#include "service/sign_service.hh"

#include <algorithm>

#include "batch/lane_scheduler.hh"
#include "common/errors.hh"
#include "common/fault.hh"
#include "hash/sha256xN.hh"
#include "sphincs/sign_task.hh"

namespace herosign::service
{

using batch::LaneScheduler;
using sphincs::SignTask;

namespace
{

unsigned
resolveCoalesce(unsigned configured)
{
    if (configured == 0)
        return LaneScheduler::preferredGroup();
    return configured;
}

} // namespace

SignService::SignService(KeyStore &store, const ServiceConfig &config,
                         std::shared_ptr<ContextCache> cache,
                         std::shared_ptr<StatsRegistry> stats,
                         std::shared_ptr<AdmissionController> admission)
    : store_(store), config_(config),
      cache_(cache ? std::move(cache)
                   : std::make_shared<ContextCache>(
                         config.contextCacheCapacity, config.variant)),
      statsReg_(stats ? std::move(stats)
                      : std::make_shared<StatsRegistry>(
                            config.telemetry)),
      tel_(&statsReg_->telemetry()),
      admission_(admission
                     ? std::move(admission)
                     : std::make_shared<AdmissionController>(
                           AdmissionLimits::fromConfig(config))),
      queue_(config.shards == 0 ? 1 : config.shards),
      coalesce_(resolveCoalesce(config.signCoalesce))
{
    const unsigned n = config.workers == 0 ? 1 : config.workers;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    try {
        for (unsigned i = 0; i < n; ++i)
            workers_[i]->thread =
                std::thread([this, i] { workerLoop(i); });
    } catch (...) {
        queue_.close();
        for (auto &w : workers_) {
            if (w->thread.joinable())
                w->thread.join();
        }
        throw;
    }
}

SignService::~SignService()
{
    // Graceful teardown: everything still queued is signed before the
    // workers join — destruction never strands a future.
    queue_.close();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

void
SignService::close()
{
    closing_.store(true, std::memory_order_release);
    // Workers still pop what remains; the closing_ flag makes
    // processChunk() fast-fail each task with ServiceShutdown,
    // releasing its admission slot — the shared budget drains to its
    // idle level and no future is stranded.
    queue_.close();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

std::future<ByteVec>
SignService::submit(const std::string &key_id, batch::SignRequest req)
{
    // Checked before admission so a rejected-at-shutdown submit never
    // claims (and then has to return) budget.
    if (closing_.load(std::memory_order_acquire))
        throw ServiceShutdown("SignService: submit after close()");
    auto key = store_.find(key_id);
    if (!key)
        throw std::invalid_argument("SignService: unknown key id '" +
                                    key_id + "'");
    if (!key->canSign())
        throw std::invalid_argument("SignService: key '" + key_id +
                                    "' is verify-only");
    if (!req.optRand.empty() && req.optRand.size() != key->params.n)
        throw std::invalid_argument(
            "SignService: opt_rand must be n bytes");

    // Admission is the shared fabric's hard cap: the controller
    // checks every limit (plane cap, shared budget, tenant quota)
    // and claims the slot inside one critical section, closing the
    // check-then-act race between producers on both planes.
    TenantCounters &tc = statsReg_->tenant(key_id);
    try {
        admission_->admit(Plane::Sign, tc, key_id);
    } catch (const ServiceOverload &) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        throw;
    }
    uint64_t seq;
    {
        std::lock_guard<std::mutex> lk(drainM_);
        if (!epochOpen_) {
            epochOpen_ = true;
            epochStart_ = std::chrono::steady_clock::now();
        }
        seq = submitted_.fetch_add(1, std::memory_order_relaxed);
    }

    // The slot is claimed: any failure from here to a successful
    // enqueue must complete it and return the budget, or drain()
    // would wait forever.
    try {
        tc.signsSubmitted.fetch_add(1, std::memory_order_relaxed);
        Task task;
        // Route once at admission: the worker hot path reuses the
        // warm context and never constructs hashing state.
        task.warm = cache_->acquire(key);
        task.tenant = &tc;
        task.seq = seq;
        task.msg = std::move(req.message);
        task.optRand = std::move(req.optRand);
        task.callback = std::move(req.callback);
        task.deadline = req.deadline;
        auto fut = task.promise.get_future();
        tel_->stamp(task.trace, telemetry::Stage::Admit);
        queue_.push(std::move(task));
        return fut;
    } catch (...) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        // Keep the per-tenant identity submitted == completed +
        // failures intact: the job will never reach a worker.
        tc.signFailures.fetch_add(1, std::memory_order_relaxed);
        admission_->release(Plane::Sign, tc);
        noteCompletion();
        if (closing_.load(std::memory_order_acquire))
            throw ServiceShutdown("SignService: submit after close()");
        throw;
    }
}

std::vector<std::future<ByteVec>>
SignService::submitMany(const std::string &key_id,
                        std::span<batch::SignRequest> reqs)
{
    std::vector<std::future<ByteVec>> futures;
    futures.reserve(reqs.size());
    for (batch::SignRequest &r : reqs)
        futures.push_back(submit(key_id, std::move(r)));
    return futures;
}

std::future<ByteVec>
SignService::submitSign(const std::string &key_id, ByteVec msg,
                        ByteVec opt_rand)
{
    return submit(key_id,
                  batch::SignRequest{std::move(msg),
                                     std::move(opt_rand), {}, {}});
}

void
SignService::noteCompletion()
{
    {
        std::lock_guard<std::mutex> lk(drainM_);
        completed_.fetch_add(1, std::memory_order_release);
        lastCompletion_ = std::chrono::steady_clock::now();
    }
    drainCv_.notify_all();
}

void
SignService::completeTrace(Task &task, bool ok)
{
    if (!tel_->enabled())
        return;
    tel_->stamp(task.trace, telemetry::Stage::Done);
    telemetry::RequestOutcome out;
    out.plane = telemetry::Plane::Sign;
    out.seq = task.seq;
    out.tenant = &task.tenant->id;
    out.flags = task.traceFlags;
    if (!ok)
        out.flags |= telemetry::kSpanFailed;
    if (FaultInjector::armed())
        out.flags |= telemetry::kSpanFaultArmed;
    // Failure timelines are sampled into the trace ring (with their
    // flags) but kept out of the latency histograms, so percentiles
    // describe successful traffic only.
    out.recordHistograms = ok;
    out.tenantEndToEnd = ok ? &task.tenant->signLatency : nullptr;
    tel_->complete(task.trace, out);
}

ByteVec
SignService::guardSignature(ByteVec sig, Task &task)
{
    const WarmContext &warm = *task.warm;
    if (warm.scheme.verify(warm.ctx, task.msg, sig, warm.key->pk))
        return sig;
    // The signature we just produced does not verify: quarantine the
    // SIMD tier that produced it process-wide and redo the job on the
    // forced-scalar path, which the simd-lane fault seam cannot touch
    // by construction.
    task.traceFlags |= telemetry::kSpanGuardMismatch;
    guardMismatches_.fetch_add(1, std::memory_order_relaxed);
    if (sha256LanesQuarantineActiveTier() != LaneBackend::Scalar) {
        task.traceFlags |= telemetry::kSpanLaneQuarantine;
        laneQuarantines_.fetch_add(1, std::memory_order_relaxed);
    }
    ScopedScalarLanes scalar;
    ByteVec redo = warm.scheme.sign(warm.ctx, task.msg, warm.key->sk,
                                    task.optRand);
    if (warm.scheme.verify(warm.ctx, task.msg, redo, warm.key->pk))
        return redo;
    // Even the scalar path cannot produce a verifiable signature —
    // fail the job rather than release bytes that might leak WOTS
    // one-time key material.
    throw SigningFault(
        "SignService: signature failed verify-after-sign twice");
}

void
SignService::finishTask(Task &task, ByteVec sig)
{
    if (task.callback) {
        // A throwing callback must not poison the finished
        // signature: isolate it and count it.
        try {
            FaultInjector::throwIfFires(FaultPoint::CallbackThrow);
            task.callback(task.seq, sig);
        } catch (...) {
            callbackErrors_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    task.tenant->signsCompleted.fetch_add(1,
                                          std::memory_order_relaxed);
    task.promise.set_value(std::move(sig));
    task.settled = true;
    completeTrace(task, true);
    task.warm.reset(); // release the context pin promptly
    admission_->release(Plane::Sign, *task.tenant);
    noteCompletion();
}

void
SignService::failTask(Task &task, std::exception_ptr err)
{
    if (task.settled)
        return;
    failures_.fetch_add(1, std::memory_order_relaxed);
    task.tenant->signFailures.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_exception(std::move(err));
    task.settled = true;
    completeTrace(task, false);
    task.warm.reset();
    admission_->release(Plane::Sign, *task.tenant);
    noteCompletion();
}

void
SignService::signSameContextGroup(Task *const tasks[], unsigned count)
{
    for (unsigned i = 0; i < count; ++i)
        tel_->stamp(tasks[i]->trace, telemetry::Stage::GroupFormed);
    tel_->recordGroup(telemetry::Plane::Sign, count,
                      LaneScheduler::preferredGroup());

    if (count == 1) {
        Task &task = *tasks[0];
        try {
            tel_->stamp(task.trace, telemetry::Stage::CryptoStart);
            ByteVec sig = task.warm->scheme.sign(
                task.warm->ctx, task.msg, task.warm->key->sk,
                task.optRand);
            tel_->stamp(task.trace, telemetry::Stage::CryptoEnd);
            if (config_.verifyAfterSign)
                sig = guardSignature(std::move(sig), task);
            // Always stamped (equal to CryptoEnd when the guard is
            // off) so the callback stage has a stable left edge.
            tel_->stamp(task.trace, telemetry::Stage::GuardEnd);
            finishTask(task, std::move(sig));
        } catch (...) {
            failTask(task, std::current_exception());
        }
        return;
    }

    // Cross-signature path: every member shares one warm context, so
    // the whole run signs as one lockstep lane group.
    const WarmContext &warm = *tasks[0]->warm;
    std::unique_ptr<SignTask> sts[LaneScheduler::maxGroup];
    SignTask *ptrs[LaneScheduler::maxGroup];
    unsigned live[LaneScheduler::maxGroup];
    unsigned nlive = 0;
    for (unsigned i = 0; i < count; ++i) {
        try {
            sts[nlive] = std::make_unique<SignTask>(
                warm.ctx, warm.key->sk, tasks[i]->msg,
                tasks[i]->optRand);
            ptrs[nlive] = sts[nlive].get();
            live[nlive] = i;
            ++nlive;
        } catch (...) {
            failTask(*tasks[i], std::current_exception());
        }
    }
    if (nlive == 0)
        return;
    for (unsigned i = 0; i < nlive; ++i)
        tel_->stamp(tasks[live[i]]->trace,
                    telemetry::Stage::CryptoStart);
    bool ran = false;
    try {
        LaneScheduler::run(ptrs, nlive);
        ran = true;
    } catch (...) {
        for (unsigned i = 0; i < nlive; ++i)
            failTask(*tasks[live[i]], std::current_exception());
    }
    if (!ran)
        return;
    for (unsigned i = 0; i < nlive; ++i)
        tel_->stamp(tasks[live[i]]->trace,
                    telemetry::Stage::CryptoEnd);
    laneGroups_.fetch_add(1, std::memory_order_relaxed);
    crossSignJobs_.fetch_add(nlive, std::memory_order_relaxed);
    for (unsigned i = 0; i < nlive; ++i) {
        Task &task = *tasks[live[i]];
        try {
            ByteVec sig = sts[i]->takeSignature();
            if (config_.verifyAfterSign)
                sig = guardSignature(std::move(sig), task);
            tel_->stamp(task.trace, telemetry::Stage::GuardEnd);
            finishTask(task, std::move(sig));
        } catch (...) {
            failTask(task, std::current_exception());
        }
    }
}

void
SignService::processChunk(std::vector<Task> &chunk)
{
    // Admission filter at dequeue time: a closing service fast-fails
    // everything still queued, and per-request deadlines drop work
    // that is already too late — in both cases the promise is settled
    // with a typed error and the admission slot is released.
    const bool closing = closing_.load(std::memory_order_acquire);
    const auto now = std::chrono::steady_clock::now();
    for (Task &t : chunk) {
        if (closing) {
            failTask(t, std::make_exception_ptr(ServiceShutdown(
                            "SignService: closed while the job was "
                            "still queued")));
        } else if (t.deadline && now > *t.deadline) {
            expired_.fetch_add(1, std::memory_order_relaxed);
            t.traceFlags |= telemetry::kSpanExpired;
            failTask(t, std::make_exception_ptr(DeadlineExceeded(
                            "SignService: deadline passed while the "
                            "job was queued")));
        }
    }

    // Partition by warm context: only jobs sharing one context
    // (one tenant key) may sign in lockstep. Submission order is
    // preserved within each group.
    std::vector<char> used(chunk.size(), 0);
    Task *group[LaneScheduler::maxGroup];
    for (size_t i = 0; i < chunk.size(); ++i) {
        if (used[i] || chunk[i].settled)
            continue;
        unsigned n = 0;
        group[n++] = &chunk[i];
        used[i] = 1;
        const WarmContext *ctx = chunk[i].warm.get();
        for (size_t j = i + 1;
             j < chunk.size() && n < LaneScheduler::maxGroup; ++j) {
            if (!used[j] && !chunk[j].settled &&
                chunk[j].warm.get() == ctx) {
                group[n++] = &chunk[j];
                used[j] = 1;
            }
        }
        signSameContextGroup(group, n);
    }
}

void
SignService::workerLoop(unsigned id)
{
    const unsigned home = id % queue_.shards();
    std::vector<Task> chunk;
    chunk.reserve(coalesce_);
    Task task;
    while (queue_.pop(task, home)) {
        // Coalesce whatever is already queued — never wait for more.
        chunk.clear();
        tel_->stamp(task.trace, telemetry::Stage::Dequeue);
        chunk.push_back(std::move(task));
        while (chunk.size() < coalesce_ && queue_.tryPop(task, home)) {
            tel_->stamp(task.trace, telemetry::Stage::Dequeue);
            chunk.push_back(std::move(task));
        }

        try {
            if (FaultInjector::fire(FaultPoint::QueueStall))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        FaultInjector::instance().stallMs()));
            FaultInjector::throwIfFires(FaultPoint::WorkerThrow);
            processChunk(chunk);
        } catch (...) {
            // Supervision: an exception escaping a pass fails only
            // this pass's unsettled tasks (releasing their admission
            // slots) — then the worker keeps running, an in-place
            // restart that never shrinks the pool.
            for (Task &t : chunk)
                failTask(t, std::current_exception());
            workerRestarts_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

void
SignService::drain()
{
    std::unique_lock<std::mutex> lk(drainM_);
    drainCv_.wait(lk, [&] {
        return completed_.load(std::memory_order_acquire) ==
               submitted_.load(std::memory_order_acquire);
    });
}

ServiceStats
SignService::stats() const
{
    ServiceStats st;
    st.signFailures = failures_.load(std::memory_order_relaxed);
    st.signsRejected = rejected_.load(std::memory_order_relaxed);
    st.signLaneGroups = laneGroups_.load(std::memory_order_relaxed);
    st.signCrossSignJobs =
        crossSignJobs_.load(std::memory_order_relaxed);
    st.signExpired = expired_.load(std::memory_order_relaxed);
    st.callbackErrors =
        callbackErrors_.load(std::memory_order_relaxed);
    st.workerRestarts =
        workerRestarts_.load(std::memory_order_relaxed);
    st.guardMismatches =
        guardMismatches_.load(std::memory_order_relaxed);
    st.laneQuarantines =
        laneQuarantines_.load(std::memory_order_relaxed);
    {
        // One consistent snapshot of the counters AND the gauges:
        // submit() claims its sequence number and noteCompletion()
        // records each completion both under drainM_, so holding it
        // here freezes submitted_/completed_ — inFlight is exact,
        // and every task still in the queue is necessarily
        // submitted-and-not-completed, so queueDepth <= inFlight
        // holds in the snapshot. (No lock-order inversion: no thread
        // takes drainM_ while holding a queue shard mutex.)
        std::lock_guard<std::mutex> lk(drainM_);
        st.signsCompleted = completed_.load(std::memory_order_acquire);
        st.signsSubmitted = submitted_.load(std::memory_order_acquire);
        st.inFlight = st.signsSubmitted - st.signsCompleted;
        st.queueDepth = queue_.sizeApprox();
        if (epochOpen_ && st.signsCompleted > 0)
            st.wallUs = std::chrono::duration<double, std::micro>(
                            lastCompletion_ - epochStart_)
                            .count();
    }
    const uint64_t ok = st.signsCompleted >= st.signFailures
                            ? st.signsCompleted - st.signFailures
                            : 0;
    st.sigsPerSec = st.wallUs > 0 ? ok * 1e6 / st.wallUs : 0.0;
    st.cache = cache_->stats();
    st.tenants =
        statsReg_->snapshot(st.wallUs, StatsRegistry::kSignPlane);
    st.stages = tel_->snapshotStages(telemetry::Plane::Sign);
    return st;
}

} // namespace herosign::service
