#include "service/sign_service.hh"

#include <algorithm>

#include "batch/lane_scheduler.hh"
#include "sphincs/sign_task.hh"

namespace herosign::service
{

using batch::LaneScheduler;
using sphincs::SignTask;

namespace
{

unsigned
resolveCoalesce(unsigned configured)
{
    if (configured == 0)
        return LaneScheduler::preferredGroup();
    return configured;
}

} // namespace

SignService::SignService(KeyStore &store, const ServiceConfig &config,
                         std::shared_ptr<ContextCache> cache,
                         std::shared_ptr<StatsRegistry> stats,
                         std::shared_ptr<AdmissionController> admission)
    : store_(store), config_(config),
      cache_(cache ? std::move(cache)
                   : std::make_shared<ContextCache>(
                         config.contextCacheCapacity, config.variant)),
      statsReg_(stats ? std::move(stats)
                      : std::make_shared<StatsRegistry>()),
      admission_(admission
                     ? std::move(admission)
                     : std::make_shared<AdmissionController>(
                           AdmissionLimits::fromConfig(config))),
      queue_(config.shards == 0 ? 1 : config.shards),
      coalesce_(resolveCoalesce(config.signCoalesce))
{
    const unsigned n = config.workers == 0 ? 1 : config.workers;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    try {
        for (unsigned i = 0; i < n; ++i)
            workers_[i]->thread =
                std::thread([this, i] { workerLoop(i); });
    } catch (...) {
        queue_.close();
        for (auto &w : workers_) {
            if (w->thread.joinable())
                w->thread.join();
        }
        throw;
    }
}

SignService::~SignService()
{
    queue_.close();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

std::future<ByteVec>
SignService::submit(const std::string &key_id, batch::SignRequest req)
{
    auto key = store_.find(key_id);
    if (!key)
        throw std::invalid_argument("SignService: unknown key id '" +
                                    key_id + "'");
    if (!key->canSign())
        throw std::invalid_argument("SignService: key '" + key_id +
                                    "' is verify-only");
    if (!req.optRand.empty() && req.optRand.size() != key->params.n)
        throw std::invalid_argument(
            "SignService: opt_rand must be n bytes");

    // Admission is the shared fabric's hard cap: the controller
    // checks every limit (plane cap, shared budget, tenant quota)
    // and claims the slot inside one critical section, closing the
    // check-then-act race between producers on both planes.
    TenantCounters &tc = statsReg_->tenant(key_id);
    try {
        admission_->admit(Plane::Sign, tc, key_id);
    } catch (const ServiceOverload &) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        throw;
    }
    uint64_t seq;
    {
        std::lock_guard<std::mutex> lk(drainM_);
        if (!epochOpen_) {
            epochOpen_ = true;
            epochStart_ = std::chrono::steady_clock::now();
        }
        seq = submitted_.fetch_add(1, std::memory_order_relaxed);
    }

    // The slot is claimed: any failure from here to a successful
    // enqueue must complete it and return the budget, or drain()
    // would wait forever.
    try {
        tc.signsSubmitted.fetch_add(1, std::memory_order_relaxed);
        Task task;
        // Route once at admission: the worker hot path reuses the
        // warm context and never constructs hashing state.
        task.warm = cache_->acquire(key);
        task.tenant = &tc;
        task.seq = seq;
        task.msg = std::move(req.message);
        task.optRand = std::move(req.optRand);
        task.callback = std::move(req.callback);
        auto fut = task.promise.get_future();
        queue_.push(std::move(task));
        return fut;
    } catch (...) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        // Keep the per-tenant identity submitted == completed +
        // failures intact: the job will never reach a worker.
        tc.signFailures.fetch_add(1, std::memory_order_relaxed);
        admission_->release(Plane::Sign, tc);
        noteCompletion();
        throw;
    }
}

std::vector<std::future<ByteVec>>
SignService::submitMany(const std::string &key_id,
                        std::span<batch::SignRequest> reqs)
{
    std::vector<std::future<ByteVec>> futures;
    futures.reserve(reqs.size());
    for (batch::SignRequest &r : reqs)
        futures.push_back(submit(key_id, std::move(r)));
    return futures;
}

std::future<ByteVec>
SignService::submitSign(const std::string &key_id, ByteVec msg,
                        ByteVec opt_rand)
{
    return submit(key_id, batch::SignRequest{std::move(msg),
                                             std::move(opt_rand), {}});
}

void
SignService::noteCompletion()
{
    {
        std::lock_guard<std::mutex> lk(drainM_);
        completed_.fetch_add(1, std::memory_order_release);
        lastCompletion_ = std::chrono::steady_clock::now();
    }
    drainCv_.notify_all();
}

void
SignService::finishTask(Task &task, ByteVec sig)
{
    if (task.callback) {
        // A throwing callback must not poison the finished
        // signature.
        try {
            task.callback(task.seq, sig);
        } catch (...) {
        }
    }
    task.tenant->signsCompleted.fetch_add(1,
                                          std::memory_order_relaxed);
    task.promise.set_value(std::move(sig));
    task.warm.reset(); // release the context pin promptly
    admission_->release(Plane::Sign, *task.tenant);
    noteCompletion();
}

void
SignService::failTask(Task &task, std::exception_ptr err)
{
    failures_.fetch_add(1, std::memory_order_relaxed);
    task.tenant->signFailures.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_exception(std::move(err));
    task.warm.reset();
    admission_->release(Plane::Sign, *task.tenant);
    noteCompletion();
}

void
SignService::signSameContextGroup(Task *const tasks[], unsigned count)
{
    if (count == 1) {
        Task &task = *tasks[0];
        try {
            ByteVec sig = task.warm->scheme.sign(
                task.warm->ctx, task.msg, task.warm->key->sk,
                task.optRand);
            finishTask(task, std::move(sig));
        } catch (...) {
            failTask(task, std::current_exception());
        }
        return;
    }

    // Cross-signature path: every member shares one warm context, so
    // the whole run signs as one lockstep lane group.
    const WarmContext &warm = *tasks[0]->warm;
    std::unique_ptr<SignTask> sts[LaneScheduler::maxGroup];
    SignTask *ptrs[LaneScheduler::maxGroup];
    unsigned live[LaneScheduler::maxGroup];
    unsigned nlive = 0;
    for (unsigned i = 0; i < count; ++i) {
        try {
            sts[nlive] = std::make_unique<SignTask>(
                warm.ctx, warm.key->sk, tasks[i]->msg,
                tasks[i]->optRand);
            ptrs[nlive] = sts[nlive].get();
            live[nlive] = i;
            ++nlive;
        } catch (...) {
            failTask(*tasks[i], std::current_exception());
        }
    }
    if (nlive == 0)
        return;
    bool ran = false;
    try {
        LaneScheduler::run(ptrs, nlive);
        ran = true;
    } catch (...) {
        for (unsigned i = 0; i < nlive; ++i)
            failTask(*tasks[live[i]], std::current_exception());
    }
    if (!ran)
        return;
    laneGroups_.fetch_add(1, std::memory_order_relaxed);
    crossSignJobs_.fetch_add(nlive, std::memory_order_relaxed);
    for (unsigned i = 0; i < nlive; ++i) {
        try {
            finishTask(*tasks[live[i]], sts[i]->takeSignature());
        } catch (...) {
            failTask(*tasks[live[i]], std::current_exception());
        }
    }
}

void
SignService::workerLoop(unsigned id)
{
    const unsigned home = id % queue_.shards();
    std::vector<Task> chunk;
    chunk.reserve(coalesce_);
    Task task;
    while (queue_.pop(task, home)) {
        // Coalesce whatever is already queued — never wait for more.
        chunk.clear();
        chunk.push_back(std::move(task));
        while (chunk.size() < coalesce_ && queue_.tryPop(task, home))
            chunk.push_back(std::move(task));

        // Partition by warm context: only jobs sharing one context
        // (one tenant key) may sign in lockstep. Submission order is
        // preserved within each group.
        std::vector<char> used(chunk.size(), 0);
        Task *group[LaneScheduler::maxGroup];
        for (size_t i = 0; i < chunk.size(); ++i) {
            if (used[i])
                continue;
            unsigned n = 0;
            group[n++] = &chunk[i];
            used[i] = 1;
            const WarmContext *ctx = chunk[i].warm.get();
            for (size_t j = i + 1;
                 j < chunk.size() && n < LaneScheduler::maxGroup;
                 ++j) {
                if (!used[j] && chunk[j].warm.get() == ctx) {
                    group[n++] = &chunk[j];
                    used[j] = 1;
                }
            }
            signSameContextGroup(group, n);
        }
    }
}

void
SignService::drain()
{
    std::unique_lock<std::mutex> lk(drainM_);
    drainCv_.wait(lk, [&] {
        return completed_.load(std::memory_order_acquire) ==
               submitted_.load(std::memory_order_acquire);
    });
}

ServiceStats
SignService::stats() const
{
    ServiceStats st;
    // Completed loads before submitted so inFlight cannot underflow
    // (a job never completes before it is submitted); the
    // completed/failures difference below is clamped instead, since
    // a failing job bumps failures_ strictly before completed_.
    st.signFailures = failures_.load(std::memory_order_relaxed);
    st.signsCompleted = completed_.load(std::memory_order_acquire);
    st.signsSubmitted = submitted_.load(std::memory_order_acquire);
    st.signsRejected = rejected_.load(std::memory_order_relaxed);
    st.signLaneGroups = laneGroups_.load(std::memory_order_relaxed);
    st.signCrossSignJobs =
        crossSignJobs_.load(std::memory_order_relaxed);
    st.inFlight = st.signsSubmitted - st.signsCompleted;
    st.queueDepth = queue_.sizeApprox();
    {
        std::lock_guard<std::mutex> lk(drainM_);
        if (epochOpen_ && st.signsCompleted > 0)
            st.wallUs = std::chrono::duration<double, std::micro>(
                            lastCompletion_ - epochStart_)
                            .count();
    }
    const uint64_t ok = st.signsCompleted >= st.signFailures
                            ? st.signsCompleted - st.signFailures
                            : 0;
    st.sigsPerSec = st.wallUs > 0 ? ok * 1e6 / st.wallUs : 0.0;
    st.cache = cache_->stats();
    st.tenants = statsReg_->snapshot(st.wallUs);
    return st;
}

} // namespace herosign::service
