#include "service/sign_service.hh"

namespace herosign::service
{

SignService::SignService(KeyStore &store, const ServiceConfig &config,
                         std::shared_ptr<ContextCache> cache,
                         std::shared_ptr<StatsRegistry> stats,
                         std::shared_ptr<AdmissionController> admission)
    : store_(store), config_(config),
      cache_(cache ? std::move(cache)
                   : std::make_shared<ContextCache>(
                         config.contextCacheCapacity, config.variant)),
      statsReg_(stats ? std::move(stats)
                      : std::make_shared<StatsRegistry>()),
      admission_(admission
                     ? std::move(admission)
                     : std::make_shared<AdmissionController>(
                           AdmissionLimits::fromConfig(config))),
      queue_(config.shards == 0 ? 1 : config.shards)
{
    const unsigned n = config.workers == 0 ? 1 : config.workers;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    try {
        for (unsigned i = 0; i < n; ++i)
            workers_[i]->thread =
                std::thread([this, i] { workerLoop(i); });
    } catch (...) {
        queue_.close();
        for (auto &w : workers_) {
            if (w->thread.joinable())
                w->thread.join();
        }
        throw;
    }
}

SignService::~SignService()
{
    queue_.close();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

std::future<ByteVec>
SignService::submitSign(const std::string &key_id, ByteVec msg,
                        ByteVec opt_rand)
{
    auto key = store_.find(key_id);
    if (!key)
        throw std::invalid_argument("SignService: unknown key id '" +
                                    key_id + "'");
    if (!key->canSign())
        throw std::invalid_argument("SignService: key '" + key_id +
                                    "' is verify-only");
    if (!opt_rand.empty() && opt_rand.size() != key->params.n)
        throw std::invalid_argument(
            "SignService: opt_rand must be n bytes");

    // Admission is the shared fabric's hard cap: the controller
    // checks every limit (plane cap, shared budget, tenant quota)
    // and claims the slot inside one critical section, closing the
    // check-then-act race between producers on both planes.
    TenantCounters &tc = statsReg_->tenant(key_id);
    try {
        admission_->admit(Plane::Sign, tc, key_id);
    } catch (const ServiceOverload &) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        throw;
    }
    {
        std::lock_guard<std::mutex> lk(drainM_);
        if (!epochOpen_) {
            epochOpen_ = true;
            epochStart_ = std::chrono::steady_clock::now();
        }
        submitted_.fetch_add(1, std::memory_order_relaxed);
    }

    // The slot is claimed: any failure from here to a successful
    // enqueue must complete it and return the budget, or drain()
    // would wait forever.
    try {
        tc.signsSubmitted.fetch_add(1, std::memory_order_relaxed);
        Task task;
        // Route once at admission: the worker hot path reuses the
        // warm context and never constructs hashing state.
        task.warm = cache_->acquire(key);
        task.tenant = &tc;
        task.msg = std::move(msg);
        task.optRand = std::move(opt_rand);
        auto fut = task.promise.get_future();
        queue_.push(std::move(task));
        return fut;
    } catch (...) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        // Keep the per-tenant identity submitted == completed +
        // failures intact: the job will never reach a worker.
        tc.signFailures.fetch_add(1, std::memory_order_relaxed);
        admission_->release(Plane::Sign, tc);
        {
            std::lock_guard<std::mutex> lk(drainM_);
            completed_.fetch_add(1, std::memory_order_release);
            lastCompletion_ = std::chrono::steady_clock::now();
        }
        drainCv_.notify_all();
        throw;
    }
}

void
SignService::workerLoop(unsigned id)
{
    const unsigned home = id % queue_.shards();
    Task task;
    while (queue_.pop(task, home)) {
        try {
            ByteVec sig = task.warm->scheme.sign(
                task.warm->ctx, task.msg, task.warm->key->sk,
                task.optRand);
            task.tenant->signsCompleted.fetch_add(
                1, std::memory_order_relaxed);
            task.promise.set_value(std::move(sig));
        } catch (...) {
            failures_.fetch_add(1, std::memory_order_relaxed);
            task.tenant->signFailures.fetch_add(
                1, std::memory_order_relaxed);
            task.promise.set_exception(std::current_exception());
        }
        task.warm.reset(); // release the context pin promptly
        admission_->release(Plane::Sign, *task.tenant);
        {
            std::lock_guard<std::mutex> lk(drainM_);
            completed_.fetch_add(1, std::memory_order_release);
            lastCompletion_ = std::chrono::steady_clock::now();
        }
        drainCv_.notify_all();
    }
}

void
SignService::drain()
{
    std::unique_lock<std::mutex> lk(drainM_);
    drainCv_.wait(lk, [&] {
        return completed_.load(std::memory_order_acquire) ==
               submitted_.load(std::memory_order_acquire);
    });
}

ServiceStats
SignService::stats() const
{
    ServiceStats st;
    // Completed loads before submitted so inFlight cannot underflow
    // (a job never completes before it is submitted); the
    // completed/failures difference below is clamped instead, since
    // a failing job bumps failures_ strictly before completed_.
    st.signFailures = failures_.load(std::memory_order_relaxed);
    st.signsCompleted = completed_.load(std::memory_order_acquire);
    st.signsSubmitted = submitted_.load(std::memory_order_acquire);
    st.signsRejected = rejected_.load(std::memory_order_relaxed);
    st.inFlight = st.signsSubmitted - st.signsCompleted;
    st.queueDepth = queue_.sizeApprox();
    {
        std::lock_guard<std::mutex> lk(drainM_);
        if (epochOpen_ && st.signsCompleted > 0)
            st.wallUs = std::chrono::duration<double, std::micro>(
                            lastCompletion_ - epochStart_)
                            .count();
    }
    const uint64_t ok = st.signsCompleted >= st.signFailures
                            ? st.signsCompleted - st.signFailures
                            : 0;
    st.sigsPerSec = st.wallUs > 0 ? ok * 1e6 / st.wallUs : 0.0;
    st.cache = cache_->stats();
    st.tenants = statsReg_->snapshot(st.wallUs);
    return st;
}

} // namespace herosign::service
