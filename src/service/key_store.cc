#include "service/key_store.hh"

#include <algorithm>
#include <stdexcept>

namespace herosign::service
{

KeyRecord::~KeyRecord()
{
    sk.zeroize();
}

std::shared_ptr<const KeyRecord>
KeyStore::insert(std::shared_ptr<KeyRecord> rec)
{
    rec->params.validate();
    std::lock_guard<std::mutex> lk(m_);
    auto [it, inserted] = keys_.emplace(rec->id, rec);
    if (!inserted)
        throw std::invalid_argument("KeyStore: duplicate key id '" +
                                    rec->id + "'");
    return it->second;
}

std::shared_ptr<const KeyRecord>
KeyStore::addKey(const std::string &id, const sphincs::KeyPair &kp)
{
    auto rec = std::make_shared<KeyRecord>();
    rec->id = id;
    rec->params = kp.sk.params;
    rec->sk = kp.sk;
    rec->pk = kp.pk;
    return insert(std::move(rec));
}

std::shared_ptr<const KeyRecord>
KeyStore::addVerifyKey(const std::string &id, const sphincs::PublicKey &pk)
{
    auto rec = std::make_shared<KeyRecord>();
    rec->id = id;
    rec->params = pk.params;
    rec->pk = pk;
    rec->sk.params = pk.params;
    return insert(std::move(rec));
}

std::shared_ptr<const KeyRecord>
KeyStore::find(const std::string &id) const
{
    std::lock_guard<std::mutex> lk(m_);
    auto it = keys_.find(id);
    return it == keys_.end() ? nullptr : it->second;
}

bool
KeyStore::remove(const std::string &id)
{
    std::lock_guard<std::mutex> lk(m_);
    return keys_.erase(id) != 0;
}

size_t
KeyStore::size() const
{
    std::lock_guard<std::mutex> lk(m_);
    return keys_.size();
}

std::vector<std::string>
KeyStore::ids() const
{
    std::vector<std::string> out;
    {
        std::lock_guard<std::mutex> lk(m_);
        out.reserve(keys_.size());
        for (const auto &[id, rec] : keys_)
            out.push_back(id);
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace herosign::service
