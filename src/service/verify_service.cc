#include "service/verify_service.hh"

#include <map>
#include <stdexcept>

namespace herosign::service
{

VerifyService::VerifyService(KeyStore &store,
                             std::shared_ptr<ContextCache> cache,
                             std::shared_ptr<StatsRegistry> stats,
                             size_t cache_capacity, Sha256Variant variant)
    : store_(store),
      cache_(cache ? std::move(cache)
                   : std::make_shared<ContextCache>(cache_capacity,
                                                    variant)),
      statsReg_(stats ? std::move(stats)
                      : std::make_shared<StatsRegistry>())
{
}

bool
VerifyService::verify(const std::string &key_id, ByteSpan msg,
                      ByteSpan sig)
{
    VerifyRequest req{key_id, msg, sig};
    return verifyBatch({req})[0] != 0;
}

std::vector<uint8_t>
VerifyService::verifyBatch(const std::vector<VerifyRequest> &reqs)
{
    std::vector<uint8_t> out(reqs.size(), 0);

    // Group request indices by tenant, preserving submission order
    // within each group so lanes fill deterministically.
    std::map<std::string, std::vector<size_t>> by_key;
    for (size_t i = 0; i < reqs.size(); ++i)
        by_key[reqs[i].keyId].push_back(i);

    for (const auto &[key_id, idxs] : by_key) {
        auto key = store_.find(key_id);
        verifies_.fetch_add(idxs.size(), std::memory_order_relaxed);
        if (!key) {
            // Unknown tenant: every request rejects. Only the global
            // counters record it — creating registry entries for
            // attacker-supplied ids would grow memory without bound.
            rejects_.fetch_add(idxs.size(), std::memory_order_relaxed);
            continue;
        }
        TenantCounters &tc = statsReg_->tenant(key_id);
        tc.verifies.fetch_add(idxs.size(), std::memory_order_relaxed);

        auto warm = cache_->acquire(key);
        std::vector<ByteSpan> msgs(idxs.size());
        std::vector<ByteSpan> sigs(idxs.size());
        for (size_t j = 0; j < idxs.size(); ++j) {
            msgs[j] = reqs[idxs[j]].msg;
            sigs[j] = reqs[idxs[j]].sig;
        }
        auto flags = warm->scheme.verifyBatch(warm->ctx, msgs, sigs,
                                              warm->key->pk);
        uint64_t group_rejects = 0;
        for (size_t j = 0; j < idxs.size(); ++j) {
            out[idxs[j]] = flags[j];
            if (!flags[j])
                ++group_rejects;
        }
        if (group_rejects > 0) {
            tc.verifyRejects.fetch_add(group_rejects,
                                       std::memory_order_relaxed);
            rejects_.fetch_add(group_rejects,
                               std::memory_order_relaxed);
        }
    }
    return out;
}

std::vector<uint8_t>
VerifyService::verifyBatch(const std::string &key_id,
                           const std::vector<ByteVec> &msgs,
                           const std::vector<ByteVec> &sigs)
{
    if (msgs.size() != sigs.size())
        throw std::invalid_argument(
            "verifyBatch: msgs/sigs size mismatch");
    std::vector<VerifyRequest> reqs(msgs.size());
    for (size_t i = 0; i < msgs.size(); ++i)
        reqs[i] = VerifyRequest{key_id, ByteSpan(msgs[i]),
                                ByteSpan(sigs[i])};
    return verifyBatch(reqs);
}

ServiceStats
VerifyService::stats() const
{
    ServiceStats st;
    st.verifies = verifies_.load(std::memory_order_relaxed);
    st.verifyRejects = rejects_.load(std::memory_order_relaxed);
    st.cache = cache_->stats();
    st.tenants = statsReg_->snapshot();
    return st;
}

} // namespace herosign::service
