#include "service/verify_service.hh"

#include <map>
#include <stdexcept>

#include "common/errors.hh"
#include "common/fault.hh"
#include "sphincs/thashx.hh"

namespace herosign::service
{

namespace
{

/// Auto coalescing window: a few lane widths, so a chunk drained from
/// the queue by one worker can fill whole lane groups for several
/// tenants at once without starving sibling workers.
constexpr unsigned kCoalesceLaneFactor = 4;

} // namespace

VerifyService::VerifyService(
    KeyStore &store, const ServiceConfig &config,
    std::shared_ptr<ContextCache> cache,
    std::shared_ptr<StatsRegistry> stats,
    std::shared_ptr<AdmissionController> admission)
    : store_(store), config_(config),
      cache_(cache ? std::move(cache)
                   : std::make_shared<ContextCache>(
                         config.contextCacheCapacity, config.variant)),
      statsReg_(stats ? std::move(stats)
                      : std::make_shared<StatsRegistry>(
                            config.telemetry)),
      tel_(&statsReg_->telemetry()),
      admission_(admission
                     ? std::move(admission)
                     : std::make_shared<AdmissionController>(
                           AdmissionLimits::fromConfig(config))),
      queue_(config.verifyShards == 0 ? 1 : config.verifyShards),
      coalesce_(config.verifyCoalesce > 0
                    ? config.verifyCoalesce
                    : kCoalesceLaneFactor * sphincs::hashLaneWidth())
{
    const unsigned n =
        config.verifyWorkers == 0 ? 1 : config.verifyWorkers;
    workers_.reserve(n);
    try {
        for (unsigned i = 0; i < n; ++i)
            workers_.emplace_back([this, i] { workerLoop(i); });
    } catch (...) {
        queue_.close();
        for (auto &w : workers_) {
            if (w.joinable())
                w.join();
        }
        throw;
    }
}

VerifyService::~VerifyService()
{
    // Graceful teardown: everything still queued is verified before
    // the workers join — destruction never strands a future.
    queue_.close();
    for (auto &w : workers_) {
        if (w.joinable())
            w.join();
    }
}

void
VerifyService::close()
{
    closing_.store(true, std::memory_order_release);
    // Workers still pop what remains; the closing_ flag makes
    // processChunk() fast-fail each request with ServiceShutdown,
    // releasing its admission slot — no future is stranded.
    queue_.close();
    for (auto &w : workers_) {
        if (w.joinable())
            w.join();
    }
}

bool
VerifyService::verify(const std::string &key_id, ByteSpan msg,
                      ByteSpan sig)
{
    VerifyRequest req{key_id, msg, sig};
    return verifyBatch({req})[0] != 0;
}

void
VerifyService::openEpochAndCountSubmitted(uint64_t count)
{
    std::lock_guard<std::mutex> lk(epochM_);
    if (!epochOpen_) {
        epochOpen_ = true;
        epochStart_ = std::chrono::steady_clock::now();
    }
    submitted_.fetch_add(count, std::memory_order_relaxed);
}

void
VerifyService::noteCompletion(uint64_t count)
{
    {
        std::lock_guard<std::mutex> lk(epochM_);
        completed_.fetch_add(count, std::memory_order_release);
        lastCompletion_ = std::chrono::steady_clock::now();
    }
    drainCv_.notify_all();
}

std::vector<uint8_t>
VerifyService::runGroup(const WarmContext &warm, TenantCounters &tc,
                        const std::vector<ByteSpan> &msgs,
                        const std::vector<ByteSpan> &sigs)
{
    auto flags =
        warm.scheme.verifyBatch(warm.ctx, msgs, sigs, warm.key->pk);
    const uint64_t n = msgs.size();
    // Group-shape telemetry covers both planes' callers of runGroup:
    // the async batcher's coalesced groups and the synchronous
    // per-tenant groups alike.
    tel_->recordGroup(telemetry::Plane::Verify, n,
                      sphincs::hashLaneWidth());
    verifies_.fetch_add(n, std::memory_order_relaxed);
    tc.verifies.fetch_add(n, std::memory_order_relaxed);
    uint64_t group_rejects = 0;
    for (uint8_t f : flags) {
        if (!f)
            ++group_rejects;
    }
    if (group_rejects > 0) {
        tc.verifyRejects.fetch_add(group_rejects,
                                   std::memory_order_relaxed);
        rejects_.fetch_add(group_rejects, std::memory_order_relaxed);
    }
    return flags;
}

std::vector<uint8_t>
VerifyService::verifyBatch(const std::vector<VerifyRequest> &reqs)
{
    std::vector<uint8_t> out(reqs.size(), 0);
    if (reqs.empty())
        return out;
    openEpochAndCountSubmitted(reqs.size());

    // Group request indices by tenant, preserving submission order
    // within each group so lanes fill deterministically.
    std::map<std::string, std::vector<size_t>> by_key;
    for (size_t i = 0; i < reqs.size(); ++i)
        by_key[reqs[i].keyId].push_back(i);

    for (const auto &[key_id, idxs] : by_key) {
        auto key = store_.find(key_id);
        if (!key) {
            // Unknown tenant: every request rejects. Only the global
            // counters record it — creating registry entries for
            // attacker-supplied ids would grow memory without bound.
            verifies_.fetch_add(idxs.size(),
                                std::memory_order_relaxed);
            rejects_.fetch_add(idxs.size(), std::memory_order_relaxed);
            unknownRejects_.fetch_add(idxs.size(),
                                      std::memory_order_relaxed);
            noteCompletion(idxs.size());
            continue;
        }
        TenantCounters &tc = statsReg_->tenant(key_id);
        tc.verifiesSubmitted.fetch_add(idxs.size(),
                                       std::memory_order_relaxed);

        auto warm = cache_->acquire(key);
        std::vector<ByteSpan> msgs(idxs.size());
        std::vector<ByteSpan> sigs(idxs.size());
        for (size_t j = 0; j < idxs.size(); ++j) {
            msgs[j] = reqs[idxs[j]].msg;
            sigs[j] = reqs[idxs[j]].sig;
        }
        auto flags = runGroup(*warm, tc, msgs, sigs);
        for (size_t j = 0; j < idxs.size(); ++j)
            out[idxs[j]] = flags[j];
        noteCompletion(idxs.size());
    }
    return out;
}

std::vector<uint8_t>
VerifyService::verifyBatch(const std::string &key_id,
                           const std::vector<ByteVec> &msgs,
                           const std::vector<ByteVec> &sigs)
{
    if (msgs.size() != sigs.size())
        throw std::invalid_argument(
            "verifyBatch: msgs/sigs size mismatch");
    std::vector<VerifyRequest> reqs(msgs.size());
    for (size_t i = 0; i < msgs.size(); ++i)
        reqs[i] = VerifyRequest{key_id, ByteSpan(msgs[i]),
                                ByteSpan(sigs[i])};
    return verifyBatch(reqs);
}

std::future<bool>
VerifyService::submit(const std::string &key_id,
                      batch::VerifyRequest req)
{
    // Checked before admission so a rejected-at-shutdown submit never
    // claims (and then has to return) budget.
    if (closing_.load(std::memory_order_acquire))
        throw ServiceShutdown("VerifyService: submit after close()");
    ByteVec msg = std::move(req.message);
    ByteVec sig = std::move(req.signature);
    auto key = store_.find(key_id);
    if (!key) {
        // Reject-not-throw, mirroring the synchronous path: a bad key
        // id is data. Resolved inline — no admission budget consumed,
        // nothing queued, no registry entry created.
        std::promise<bool> p;
        auto fut = p.get_future();
        openEpochAndCountSubmitted(1);
        verifies_.fetch_add(1, std::memory_order_relaxed);
        rejects_.fetch_add(1, std::memory_order_relaxed);
        unknownRejects_.fetch_add(1, std::memory_order_relaxed);
        noteCompletion(1);
        p.set_value(false);
        return fut;
    }

    TenantCounters &tc = statsReg_->tenant(key_id);
    try {
        admission_->admit(Plane::Verify, tc, key_id);
    } catch (const ServiceOverload &) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        throw;
    }

    // The slot is claimed: any failure from here to a successful
    // enqueue must complete the request and return the budget, or
    // drain() would wait forever.
    try {
        openEpochAndCountSubmitted(1);
        tc.verifiesSubmitted.fetch_add(1, std::memory_order_relaxed);
        Task task;
        // Route once at admission: workers verify with shared
        // immutable warm state only.
        task.warm = cache_->acquire(key);
        task.tenant = &tc;
        task.msg = std::move(msg);
        task.sig = std::move(sig);
        task.deadline = req.deadline;
        auto fut = task.promise.get_future();
        tel_->stamp(task.trace, telemetry::Stage::Admit);
        queue_.push(std::move(task));
        return fut;
    } catch (...) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        tc.verifyFailures.fetch_add(1, std::memory_order_relaxed);
        admission_->release(Plane::Verify, tc);
        noteCompletion(1);
        if (closing_.load(std::memory_order_acquire))
            throw ServiceShutdown(
                "VerifyService: submit after close()");
        throw;
    }
}

std::vector<std::future<bool>>
VerifyService::submitMany(const std::string &key_id,
                          std::span<batch::VerifyRequest> reqs)
{
    std::vector<std::future<bool>> futures;
    futures.reserve(reqs.size());
    for (batch::VerifyRequest &r : reqs)
        futures.push_back(submit(key_id, std::move(r)));
    return futures;
}

std::future<bool>
VerifyService::submitVerify(const std::string &key_id, ByteVec msg,
                            ByteVec sig)
{
    return submit(key_id, batch::VerifyRequest{std::move(msg),
                                               std::move(sig), {}});
}

void
VerifyService::workerLoop(unsigned id)
{
    const unsigned home = id % queue_.shards();
    std::vector<Task> chunk;
    Task task;
    while (queue_.pop(task, home)) {
        chunk.clear();
        tel_->stamp(task.trace, telemetry::Stage::Dequeue);
        chunk.push_back(std::move(task));
        // Lane-filling coalescing: opportunistically drain the queue
        // up to the coalescing window so the per-tenant groups below
        // reach the dispatched lane width even when tenants
        // interleave in the arrival order.
        Task extra;
        while (chunk.size() < coalesce_ &&
               queue_.tryPop(extra, home)) {
            tel_->stamp(extra.trace, telemetry::Stage::Dequeue);
            chunk.push_back(std::move(extra));
        }
        try {
            if (FaultInjector::fire(FaultPoint::QueueStall))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        FaultInjector::instance().stallMs()));
            FaultInjector::throwIfFires(FaultPoint::WorkerThrow);
            processChunk(chunk);
        } catch (...) {
            // Supervision: an exception escaping a pass fails only
            // this pass's unsettled tasks (releasing their admission
            // slots) — then the worker keeps running, an in-place
            // restart that never shrinks the pool.
            for (Task &t : chunk)
                failTask(t, std::current_exception());
            workerRestarts_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

void
VerifyService::completeTrace(Task &task, bool ok)
{
    if (!tel_->enabled())
        return;
    tel_->stamp(task.trace, telemetry::Stage::Done);
    telemetry::RequestOutcome out;
    out.plane = telemetry::Plane::Verify;
    out.tenant = &task.tenant->id;
    out.flags = task.traceFlags;
    if (!ok)
        out.flags |= telemetry::kSpanFailed;
    if (FaultInjector::armed())
        out.flags |= telemetry::kSpanFaultArmed;
    out.recordHistograms = ok;
    out.tenantEndToEnd = ok ? &task.tenant->verifyLatency : nullptr;
    tel_->complete(task.trace, out);
}

void
VerifyService::failTask(Task &task, std::exception_ptr err)
{
    if (task.settled)
        return;
    failures_.fetch_add(1, std::memory_order_relaxed);
    task.tenant->verifyFailures.fetch_add(1,
                                          std::memory_order_relaxed);
    task.promise.set_exception(std::move(err));
    task.settled = true;
    completeTrace(task, false);
    task.warm.reset();
    admission_->release(Plane::Verify, *task.tenant);
    noteCompletion(1);
}

void
VerifyService::processChunk(std::vector<Task> &chunk)
{
    // Admission filter at dequeue time: a closing service fast-fails
    // everything still queued, and per-request deadlines drop work
    // that is already too late — the promise is settled with a typed
    // error and the admission slot returns to the shared budget.
    const bool closing = closing_.load(std::memory_order_acquire);
    const auto now = std::chrono::steady_clock::now();
    for (Task &t : chunk) {
        if (closing) {
            failTask(t, std::make_exception_ptr(ServiceShutdown(
                            "VerifyService: closed while the request "
                            "was still queued")));
        } else if (t.deadline && now > *t.deadline) {
            expired_.fetch_add(1, std::memory_order_relaxed);
            t.traceFlags |= telemetry::kSpanExpired;
            failTask(t, std::make_exception_ptr(DeadlineExceeded(
                            "VerifyService: deadline passed while "
                            "the request was queued")));
        }
    }

    // Group by warm context rather than tenant id: a mid-flight key
    // rotation can put two different contexts for one id in the same
    // chunk, and each request must verify under the context it was
    // admitted with.
    std::map<const WarmContext *, std::vector<size_t>> groups;
    for (size_t i = 0; i < chunk.size(); ++i) {
        if (!chunk[i].settled)
            groups[chunk[i].warm.get()].push_back(i);
    }

    for (auto &[warm, idxs] : groups) {
        TenantCounters &tc = *chunk[idxs[0]].tenant;
        std::vector<ByteSpan> msgs(idxs.size());
        std::vector<ByteSpan> sigs(idxs.size());
        for (size_t j = 0; j < idxs.size(); ++j) {
            Task &t = chunk[idxs[j]];
            tel_->stamp(t.trace, telemetry::Stage::GroupFormed);
            msgs[j] = ByteSpan(t.msg);
            sigs[j] = ByteSpan(t.sig);
        }
        try {
            for (size_t j = 0; j < idxs.size(); ++j)
                tel_->stamp(chunk[idxs[j]].trace,
                            telemetry::Stage::CryptoStart);
            auto flags = runGroup(*warm, tc, msgs, sigs);
            for (size_t j = 0; j < idxs.size(); ++j) {
                Task &t = chunk[idxs[j]];
                // Verification has no guard pass; GuardEnd ==
                // CryptoEnd keeps the callback stage well-defined.
                tel_->stamp(t.trace, telemetry::Stage::CryptoEnd);
                tel_->stamp(t.trace, telemetry::Stage::GuardEnd);
                t.promise.set_value(flags[j] != 0);
                t.settled = true;
                completeTrace(t, true);
            }
        } catch (...) {
            failures_.fetch_add(idxs.size(),
                                std::memory_order_relaxed);
            tc.verifyFailures.fetch_add(idxs.size(),
                                        std::memory_order_relaxed);
            for (size_t j = 0; j < idxs.size(); ++j) {
                Task &t = chunk[idxs[j]];
                t.promise.set_exception(std::current_exception());
                t.settled = true;
                completeTrace(t, false);
            }
        }
        for (size_t j = 0; j < idxs.size(); ++j)
            chunk[idxs[j]].warm.reset(); // release context pins
        admission_->release(Plane::Verify, tc, idxs.size());
        noteCompletion(idxs.size());
    }
}

void
VerifyService::drain()
{
    std::unique_lock<std::mutex> lk(epochM_);
    drainCv_.wait(lk, [&] {
        return completed_.load(std::memory_order_acquire) ==
               submitted_.load(std::memory_order_acquire);
    });
}

ServiceStats
VerifyService::stats() const
{
    ServiceStats st;
    st.verifyFailures = failures_.load(std::memory_order_relaxed);
    st.verifies = verifies_.load(std::memory_order_relaxed);
    st.verifiesRejected = rejected_.load(std::memory_order_relaxed);
    st.verifyRejects = rejects_.load(std::memory_order_relaxed);
    st.unknownTenantRejects =
        unknownRejects_.load(std::memory_order_relaxed);
    st.verifyExpired = expired_.load(std::memory_order_relaxed);
    st.verifyWorkerRestarts =
        workerRestarts_.load(std::memory_order_relaxed);
    uint64_t done;
    {
        // One consistent snapshot of the counters AND the gauges:
        // openEpochAndCountSubmitted() and noteCompletion() both
        // serialize on epochM_, so holding it here freezes
        // submitted_/completed_ — verifyInFlight is exact, and every
        // request still queued is submitted-and-not-completed, so
        // verifyQueueDepth <= verifyInFlight holds in the snapshot.
        std::lock_guard<std::mutex> lk(epochM_);
        done = completed_.load(std::memory_order_acquire);
        st.verifiesSubmitted =
            submitted_.load(std::memory_order_acquire);
        st.verifyInFlight = st.verifiesSubmitted - done;
        st.verifyQueueDepth = queue_.sizeApprox();
        if (epochOpen_ && done > 0)
            st.wallUs = std::chrono::duration<double, std::micro>(
                            lastCompletion_ - epochStart_)
                            .count();
    }
    st.verifiesPerSec =
        st.wallUs > 0 ? st.verifies * 1e6 / st.wallUs : 0.0;
    st.cache = cache_->stats();
    st.tenants =
        statsReg_->snapshot(0, StatsRegistry::kVerifyPlane);
    st.stages = tel_->snapshotStages(telemetry::Plane::Verify);
    return st;
}

} // namespace herosign::service
