/**
 * @file
 * LRU cache of warm per-key signing/verification state. Building a
 * sphincs::Context hashes the seed block and copies the seeds; doing
 * that once per tenant instead of once per request is the point of
 * the serving layer. A WarmContext is immutable after construction,
 * so any number of workers use one concurrently; eviction only drops
 * the cache's reference — in-flight holders keep theirs alive.
 */

#ifndef HEROSIGN_SERVICE_CONTEXT_CACHE_HH
#define HEROSIGN_SERVICE_CONTEXT_CACHE_HH

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "service/key_store.hh"
#include "service/service_stats.hh"
#include "sphincs/context.hh"

namespace herosign::service
{

/**
 * Warm, immutable per-key state: the key record it was built for, a
 * scheme instance, and the hashing context with the precomputed
 * pk_seed mid-state (sk_seed included when the key can sign, so one
 * WarmContext serves both directions).
 */
struct WarmContext
{
    std::shared_ptr<const KeyRecord> key;
    sphincs::SphincsPlus scheme;
    sphincs::Context ctx;

    WarmContext(std::shared_ptr<const KeyRecord> k,
                Sha256Variant variant)
        : key(std::move(k)), scheme(key->params, variant),
          ctx(key->params, key->pk.pkSeed,
              key->canSign() ? ByteSpan(key->sk.skSeed) : ByteSpan{},
              variant)
    {
    }
};

/**
 * Thread-safe LRU cache keyed by tenant id. acquire() returns the
 * cached warm context or builds (and caches) one, evicting the least
 * recently used entry beyond capacity.
 */
class ContextCache
{
  public:
    explicit ContextCache(size_t capacity,
                          Sha256Variant variant = Sha256Variant::Native)
        : cap_(capacity == 0 ? 1 : capacity), variant_(variant)
    {
    }

    /** Get (or build) the warm context for @p key and mark it used. */
    std::shared_ptr<const WarmContext>
    acquire(const std::shared_ptr<const KeyRecord> &key);

    CacheStats stats() const;

    size_t size() const;
    size_t capacity() const { return cap_; }

    /** Drop every cached entry (in-flight references stay valid). */
    void clear();

  private:
    struct Entry
    {
        std::shared_ptr<const WarmContext> warm;
        std::list<std::string>::iterator lruIt;
    };

    mutable std::mutex m_;
    const size_t cap_;
    const Sha256Variant variant_;
    std::list<std::string> lru_; ///< most recently used at the front
    std::unordered_map<std::string, Entry> map_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace herosign::service

#endif // HEROSIGN_SERVICE_CONTEXT_CACHE_HH
