/**
 * @file
 * The unit of work flowing through the batch signer's queue: one
 * message to sign, its optional signing randomness, and the two
 * completion channels (a promise for the future-based API and an
 * optional callback run on the worker thread).
 */

#ifndef HEROSIGN_BATCH_SIGN_REQUEST_HH
#define HEROSIGN_BATCH_SIGN_REQUEST_HH

#include <cstdint>
#include <functional>
#include <future>

#include "common/bytes.hh"

namespace herosign::batch
{

/**
 * Completion callback: invoked on the worker thread with the
 * submission sequence number and the finished signature. Must be
 * thread-safe; keep it cheap — it runs on the signing path. It
 * should not throw: a thrown exception is caught and discarded (the
 * signature still reaches the future untouched).
 */
using SignCallback =
    std::function<void(uint64_t seq, const ByteVec &signature)>;

/** One queued signing job. Move-only (it owns a promise). */
struct SignRequest
{
    uint64_t seq = 0;       ///< submission order, 0-based
    ByteVec message;
    ByteVec optRand;        ///< empty selects deterministic signing
    std::promise<ByteVec> promise;
    SignCallback callback;  ///< optional, may be empty
};

} // namespace herosign::batch

#endif // HEROSIGN_BATCH_SIGN_REQUEST_HH
