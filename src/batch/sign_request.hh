/**
 * @file
 * The unified request structs for every submit surface in the batch
 * and service layers. One signing request (message, optional signing
 * randomness, optional completion callback) and one verification
 * request (message, signature) — BatchSigner, SignService and
 * VerifyService all accept these via submit(Request) /
 * submitMany(span<Request>), so per-request options survive batch
 * submission instead of being flattened away by message-only
 * overloads. The legacy positional overloads remain as thin
 * delegating shims.
 */

#ifndef HEROSIGN_BATCH_SIGN_REQUEST_HH
#define HEROSIGN_BATCH_SIGN_REQUEST_HH

#include <cstdint>
#include <functional>
#include <future>

#include "common/bytes.hh"

namespace herosign::batch
{

/**
 * Completion callback: invoked on the worker thread with the
 * submission sequence number and the finished signature. Must be
 * thread-safe; keep it cheap — it runs on the signing path. It
 * should not throw: a thrown exception is caught and discarded (the
 * signature still reaches the future untouched).
 */
using SignCallback =
    std::function<void(uint64_t seq, const ByteVec &signature)>;

/**
 * One signing request as the caller states it. Per-request options
 * ride along through submitMany() — every field is honored whether
 * the request is submitted alone or in a batch.
 */
struct SignRequest
{
    ByteVec message;
    ByteVec optRand;       ///< empty selects deterministic signing
    SignCallback callback; ///< optional, may be empty
};

/** One verification request (a message/signature pair). */
struct VerifyRequest
{
    ByteVec message;
    ByteVec signature;
};

/**
 * One queued signing job: the caller's request plus the submission
 * bookkeeping the worker needs. Move-only (it owns a promise).
 */
struct SignJob
{
    uint64_t seq = 0; ///< submission order, 0-based
    SignRequest req;
    std::promise<ByteVec> promise;
};

} // namespace herosign::batch

#endif // HEROSIGN_BATCH_SIGN_REQUEST_HH
