/**
 * @file
 * The unified request structs for every submit surface in the batch
 * and service layers. One signing request (message, optional signing
 * randomness, optional completion callback) and one verification
 * request (message, signature) — BatchSigner, SignService and
 * VerifyService all accept these via submit(Request) /
 * submitMany(span<Request>), so per-request options survive batch
 * submission instead of being flattened away by message-only
 * overloads. The legacy positional overloads remain as thin
 * delegating shims.
 */

#ifndef HEROSIGN_BATCH_SIGN_REQUEST_HH
#define HEROSIGN_BATCH_SIGN_REQUEST_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <optional>

#include "common/bytes.hh"
#include "telemetry/trace.hh"

namespace herosign::batch
{

/**
 * Per-request deadline, checked against steady_clock when a worker
 * dequeues the request (queued work is dropped with DeadlineExceeded
 * once past it; work already signing is never aborted mid-flight).
 */
using Deadline = std::chrono::steady_clock::time_point;

/**
 * Completion callback: invoked on the worker thread with the
 * submission sequence number and the finished signature. Must be
 * thread-safe; keep it cheap — it runs on the signing path. It
 * should not throw: a thrown exception is caught and discarded (the
 * signature still reaches the future untouched).
 */
using SignCallback =
    std::function<void(uint64_t seq, const ByteVec &signature)>;

/**
 * One signing request as the caller states it. Per-request options
 * ride along through submitMany() — every field is honored whether
 * the request is submitted alone or in a batch.
 */
struct SignRequest
{
    ByteVec message;
    ByteVec optRand;       ///< empty selects deterministic signing
    SignCallback callback; ///< optional, may be empty
    /// Drop-if-late bound; nullopt = no deadline.
    std::optional<Deadline> deadline;
};

/** One verification request (a message/signature pair). */
struct VerifyRequest
{
    ByteVec message;
    ByteVec signature;
    /// Drop-if-late bound; nullopt = no deadline.
    std::optional<Deadline> deadline;
};

/**
 * One queued signing job: the caller's request plus the submission
 * bookkeeping the worker needs. Move-only (it owns a promise).
 */
struct SignJob
{
    uint64_t seq = 0; ///< submission order, 0-based
    SignRequest req;
    std::promise<ByteVec> promise;
    /// Set once the promise has been fulfilled or failed; lets the
    /// worker supervisor fail exactly the unsettled jobs of a pass.
    bool settled = false;
    /// Stage stamps for the telemetry plane (all zero when the
    /// owning signer's telemetry is disarmed).
    telemetry::TraceClock trace;
    /// kSpan* flag bits accumulated as the job progresses.
    uint32_t traceFlags = 0;
};

} // namespace herosign::batch

#endif // HEROSIGN_BATCH_SIGN_REQUEST_HH
