/**
 * @file
 * A sharded, lock-guarded multi-producer / multi-consumer queue.
 *
 * Producers push round-robin across shards so no single mutex
 * serializes a burst of submissions; consumers pop from a home shard
 * (their "stream") and steal from sibling shards when the home shard
 * runs dry. The shard count models the engine's stream count: one
 * shard per stream keeps per-stream submission order while letting
 * idle workers help a backlogged stream.
 */

#ifndef HEROSIGN_BATCH_MPMC_QUEUE_HH
#define HEROSIGN_BATCH_MPMC_QUEUE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace herosign::batch
{

/**
 * Sharded blocking MPMC queue. All operations are thread-safe; each
 * shard is guarded by its own mutex so producers and consumers on
 * different shards never contend.
 */
template <typename T>
class ShardedMpmcQueue
{
  public:
    /** Create a queue with @p shards shards (clamped to >= 1). */
    explicit ShardedMpmcQueue(unsigned shards)
    {
        shards_.reserve(shards == 0 ? 1 : shards);
        for (unsigned i = 0; i < (shards == 0 ? 1 : shards); ++i)
            shards_.push_back(std::make_unique<Shard>());
    }

    unsigned shards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /**
     * Enqueue @p item on the next shard in round-robin order and wake
     * one consumer waiting on that shard (or, when none is parked
     * there, one parked on a sibling shard, which will steal it).
     * @throws std::runtime_error after close()
     */
    void
    push(T item)
    {
        const size_t idx =
            pushSeq_.fetch_add(1, std::memory_order_relaxed) %
            shards_.size();
        Shard &s = *shards_[idx];
        {
            std::lock_guard<std::mutex> lk(s.m);
            // The closed flag is per-shard and only ever read or
            // written under the shard mutex, so push and the
            // consumers' exhaustion verdict are strictly serialized:
            // an accepted item is always seen and drained.
            if (s.closed)
                throw std::runtime_error("push on closed queue");
            s.q.push_back(std::move(item));
            // seq_cst: one half of the Dekker pair with pop()'s
            // register-waiter-then-recheck — either the parking
            // consumer's occupancy re-check sees this item, or the
            // waiter scan below sees that consumer registered.
            size_.fetch_add(1, std::memory_order_seq_cst);
        }
        s.cv.notify_one();
        if (s.waiters.load(std::memory_order_seq_cst) == 0) {
            // Nobody parked on the target shard: hand the wakeup to
            // a consumer idling on a sibling, which will steal it.
            for (auto &t : shards_) {
                if (t.get() != &s &&
                    t->waiters.load(std::memory_order_seq_cst) > 0) {
                    // Notify under the sibling's lock: a registered
                    // waiter holds its shard mutex from registration
                    // until the wait atomically releases it, so this
                    // notify cannot land in the gap between the two
                    // and get lost.
                    std::lock_guard<std::mutex> g(t->m);
                    t->cv.notify_one();
                    break;
                }
            }
        }
    }

    /**
     * Dequeue into @p out, preferring the @p home shard and stealing
     * from the others when it is empty. Blocks while the queue is
     * open and empty.
     * @return false once the queue is closed and fully drained
     */
    bool
    pop(T &out, unsigned home)
    {
        const unsigned n = shards();
        Shard &h = *shards_[home % n];
        // Exponential idle backoff: stay responsive (200 us) while
        // work trickles in, but don't busy-poll a long-idle queue.
        auto backoff = std::chrono::microseconds(200);
        constexpr auto max_backoff = std::chrono::milliseconds(5);
        for (;;) {
            if (tryPop(out, home))
                return true;
            std::unique_lock<std::mutex> lk(h.m);
            if (!h.q.empty()) {
                out = std::move(h.q.front());
                h.q.pop_front();
                size_.fetch_sub(1, std::memory_order_release);
                return true;
            }
            if (h.closed) {
                lk.unlock();
                // Other shards may still hold work after close; only
                // report exhaustion once every shard has been seen
                // closed AND empty under its own lock — after that
                // no push can ever be accepted again.
                if (tryPop(out, home))
                    return true;
                bool exhausted = true;
                for (unsigned i = 0; i < n && exhausted; ++i) {
                    Shard &s = *shards_[(home + i) % n];
                    std::lock_guard<std::mutex> g(s.m);
                    if (!s.closed || !s.q.empty())
                        exhausted = false;
                }
                if (exhausted)
                    return false;
                continue;
            }
            // Park protocol: register as a waiter BEFORE the final
            // occupancy re-check (the other half of push()'s Dekker
            // pair). A producer either publishes its size_ increment
            // before our re-check — we skip the wait and re-scan — or
            // it observes waiters > 0 and notifies under the shard
            // lock, which cannot happen before our wait because we
            // hold the lock from registration until wait_for
            // atomically releases it. Either way an accepted item is
            // consumed without eating a full backoff timeout.
            h.waiters.fetch_add(1, std::memory_order_seq_cst);
            if (parkProbe)
                parkProbe();
            if (size_.load(std::memory_order_seq_cst) == 0) {
                // Bounded wait so a steal opportunity on a sibling
                // shard is noticed even without a notification here.
                h.cv.wait_for(lk, backoff);
                backoff = std::min<std::chrono::microseconds>(
                    backoff * 2, max_backoff);
            }
            h.waiters.fetch_sub(1, std::memory_order_relaxed);
        }
    }

    /**
     * Non-blocking dequeue scanning all shards starting at @p home.
     * @return true when an item was dequeued
     */
    bool
    tryPop(T &out, unsigned home)
    {
        const unsigned n = shards();
        for (unsigned i = 0; i < n; ++i) {
            Shard &s = *shards_[(home + i) % n];
            std::lock_guard<std::mutex> lk(s.m);
            if (s.q.empty())
                continue;
            out = std::move(s.q.front());
            s.q.pop_front();
            size_.fetch_sub(1, std::memory_order_release);
            if (i != 0)
                steals_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    /** Close the queue: pending items still drain, pushes throw. */
    void
    close()
    {
        closed_.store(true, std::memory_order_release);
        for (auto &s : shards_) {
            std::lock_guard<std::mutex> lk(s->m);
            s->closed = true;
            s->cv.notify_all();
        }
    }

    bool closed() const
    {
        return closed_.load(std::memory_order_acquire);
    }

    /** Approximate number of queued items. */
    size_t sizeApprox() const
    {
        return size_.load(std::memory_order_acquire);
    }

    /** Cross-shard (work-stealing) dequeues so far. */
    uint64_t steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    /**
     * Test-only seam: invoked by pop() after it registers as a waiter
     * and before it re-checks occupancy, i.e. inside the historical
     * lost-wakeup window. Lets a regression test inject a push at the
     * exact instant the race used to strike. Must be set before any
     * consumer runs; the hook runs with the home shard's mutex held,
     * so it must not touch that shard. Never set in production.
     */
    std::function<void()> parkProbe;

  private:
    struct Shard
    {
        std::mutex m;
        std::condition_variable cv;
        std::deque<T> q;
        std::atomic<unsigned> waiters{0};
        bool closed = false; ///< guarded by m (push/drain verdict)
    };

    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<uint64_t> pushSeq_{0};
    std::atomic<size_t> size_{0};
    std::atomic<uint64_t> steals_{0};
    std::atomic<bool> closed_{false};
};

} // namespace herosign::batch

#endif // HEROSIGN_BATCH_MPMC_QUEUE_HH
