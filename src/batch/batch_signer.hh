/**
 * @file
 * BatchSigner: a real multi-threaded SPHINCS+ batch signing service.
 *
 * Where SignEngine::signBatchTiming simulates a GPU batch timeline,
 * BatchSigner executes one: N worker threads (modeling per-stream
 * workers) pull jobs from a sharded MPMC queue (one shard per engine
 * stream) and sign with private per-worker SphincsPlus contexts, so
 * after dequeue the hot path touches no shared state. Signatures are
 * byte-identical to the scalar sphincs::SphincsPlus path regardless
 * of worker count or scheduling order.
 */

#ifndef HEROSIGN_BATCH_BATCH_SIGNER_HH
#define HEROSIGN_BATCH_BATCH_SIGNER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "batch/batch_stats.hh"
#include "batch/mpmc_queue.hh"
#include "batch/sign_request.hh"
#include "hash/sha256.hh"
#include "sphincs/sphincs.hh"

namespace herosign::batch
{

/** Construction-time knobs for a BatchSigner. */
struct BatchSignerConfig
{
    unsigned workers = 4;  ///< worker threads (clamped to >= 1)
    unsigned shards = 4;   ///< queue shards; engine wires streams here
    Sha256Variant variant = Sha256Variant::Native;
};

/**
 * A pool of signing workers bound to one (params, secret key) pair.
 *
 * Thread-safe: submit()/submitMany() may be called concurrently from
 * any number of producer threads. drain() blocks until every job
 * submitted so far has completed and returns the batch statistics;
 * the destructor drains implicitly before joining the workers.
 */
class BatchSigner
{
  public:
    BatchSigner(const sphincs::Params &params,
                const sphincs::SecretKey &sk,
                const BatchSignerConfig &config = {});
    ~BatchSigner();

    BatchSigner(const BatchSigner &) = delete;
    BatchSigner &operator=(const BatchSigner &) = delete;

    /**
     * Queue one message; the future yields its signature (or the
     * exception signing raised).
     * @param opt_rand n bytes of signing randomness; empty selects
     *        the deterministic variant
     */
    std::future<ByteVec> submit(ByteVec msg, ByteVec opt_rand = {});

    /**
     * Queue one message with a completion callback. The callback runs
     * on the worker thread right before the future is fulfilled; it
     * is not invoked when signing throws.
     */
    std::future<ByteVec> submit(ByteVec msg, SignCallback cb,
                                ByteVec opt_rand = {});

    /** Queue a whole batch; futures are in message order. */
    std::vector<std::future<ByteVec>>
    submitMany(const std::vector<ByteVec> &msgs);

    /**
     * Block until everything submitted so far has completed, then
     * return the statistics for the batch (all jobs since the last
     * drain) and start a new batch epoch.
     */
    BatchStats drain();

    unsigned workers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    unsigned shards() const { return queue_.shards(); }

    const sphincs::Params &params() const { return params_; }

    /** Jobs submitted and not yet completed (approximate). */
    uint64_t pending() const
    {
        // Load completed first: a job can complete between the two
        // loads, but none can complete before being submitted, so
        // this order cannot underflow.
        const uint64_t done = completed_.load();
        const uint64_t sub = submitted_.load();
        return sub - done;
    }

  private:
    struct Worker
    {
        Worker(const sphincs::Params &p, Sha256Variant variant,
               const sphincs::SecretKey &key)
            : scheme(p, variant), sk(key)
        {
        }

        std::thread thread;
        sphincs::SphincsPlus scheme; ///< private context: no sharing
        sphincs::SecretKey sk;       ///< private key copy: no sharing
        std::atomic<uint64_t> signedCount{0};
    };

    void workerLoop(unsigned id);
    std::future<ByteVec> enqueue(ByteVec msg, ByteVec opt_rand,
                                 SignCallback cb);

    sphincs::Params params_;
    ShardedMpmcQueue<SignRequest> queue_;
    std::vector<std::unique_ptr<Worker>> workers_;

    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> failures_{0};

    // Batch-epoch bookkeeping, guarded by drainM_.
    std::mutex drainM_;
    std::condition_variable drainCv_;
    std::chrono::steady_clock::time_point epochStart_;
    std::chrono::steady_clock::time_point lastCompletion_;
    bool epochOpen_ = false;
    uint64_t epochJobsBase_ = 0;
    uint64_t epochStealsBase_ = 0;
    uint64_t epochFailuresBase_ = 0;
    std::vector<uint64_t> epochWorkerBase_;
};

} // namespace herosign::batch

#endif // HEROSIGN_BATCH_BATCH_SIGNER_HH
