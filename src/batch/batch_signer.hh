/**
 * @file
 * BatchSigner: a real multi-threaded SPHINCS+ batch signing service.
 *
 * Where SignEngine::signBatchTiming simulates a GPU batch timeline,
 * BatchSigner executes one: N worker threads (modeling per-stream
 * workers) pull jobs from a sharded MPMC queue (one shard per engine
 * stream) and sign against shared *immutable* key state — one
 * SecretKey (held via shared_ptr, zeroized on teardown when owned
 * here) and one warm hashing Context built once at construction, so
 * the hot path performs no per-sign Context construction and no
 * worker ever holds a private copy of secret material.
 *
 * Workers coalesce queued jobs into cross-signature lane groups: one
 * blocking pop plus non-blocking pops up to the configured laneGroup,
 * signed in lockstep by the batch::LaneScheduler so SIMD hash lanes
 * fill across signatures even on parameter shapes whose per-signature
 * trees are narrower than the lane width. A group of one falls back
 * to the within-signature path. Signatures are byte-identical to the
 * scalar sphincs::SphincsPlus path regardless of worker count, group
 * size or scheduling order.
 */

#ifndef HEROSIGN_BATCH_BATCH_SIGNER_HH
#define HEROSIGN_BATCH_BATCH_SIGNER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "batch/batch_stats.hh"
#include "batch/mpmc_queue.hh"
#include "batch/sign_request.hh"
#include "hash/sha256.hh"
#include "sphincs/sphincs.hh"
#include "telemetry/telemetry.hh"

namespace herosign::tune
{
struct Profile;
struct BatchKnobOverrides;
} // namespace herosign::tune

namespace herosign::batch
{

/** Construction-time knobs for a BatchSigner. */
struct BatchSignerConfig
{
    unsigned workers = 4;  ///< worker threads (clamped to >= 1)
    unsigned shards = 4;   ///< queue shards; engine wires streams here
    /// Jobs one worker coalesces into a single cross-signature lane
    /// group (signed in lockstep, hash lanes filled across
    /// signatures). 0 = auto (the dispatched hash-lane width);
    /// 1 disables coalescing — every job takes the within-signature
    /// path. Clamped to the LaneScheduler group bound.
    unsigned laneGroup = 0;
    Sha256Variant variant = Sha256Variant::Native;
    /// Verify every produced signature against the warm context
    /// before it is released. On a mismatch the job is re-signed once
    /// on the forced-scalar path and the suspect SIMD tier is
    /// quarantined process-wide; a second mismatch fails the job with
    /// SigningFault. A corrupt signature never escapes — for SPHINCS+
    /// that matters doubly, since a faulty signature can leak WOTS
    /// one-time key material.
    bool verifyAfterSign = false;
    /// Telemetry-plane knobs for this signer's private Telemetry
    /// (stage histograms, group-shape histograms, trace sampling).
    telemetry::TelemetryConfig telemetry;

    /**
     * The recommended construction path on a tuned host: workers,
     * shards and laneGroup from a persisted autotuner profile,
     * clamped exactly like directly-set values. The overload taking
     * BatchKnobOverrides lets explicitly user-set knobs win over the
     * profile unconditionally. Defined in src/tune/.
     */
    static BatchSignerConfig fromProfile(const tune::Profile &p);
    static BatchSignerConfig
    fromProfile(const tune::Profile &p,
                const tune::BatchKnobOverrides &user);
};

/**
 * A pool of signing workers bound to one (params, secret key) pair.
 *
 * Thread-safe: submit()/submitMany() may be called concurrently from
 * any number of producer threads. drain() blocks until every job
 * submitted so far has completed and returns the batch statistics;
 * the destructor drains implicitly before joining the workers.
 */
class BatchSigner
{
  public:
    /**
     * Convenience constructor: copies @p sk once into shared storage
     * that is securely zeroized when the signer (and any outstanding
     * references) tear down.
     */
    BatchSigner(const sphincs::Params &params,
                const sphincs::SecretKey &sk,
                const BatchSignerConfig &config = {});

    /**
     * Context-injection constructor: share key material owned
     * elsewhere (e.g. a service KeyStore) without copying it. The
     * pointee must stay immutable for the signer's lifetime.
     */
    BatchSigner(const sphincs::Params &params,
                std::shared_ptr<const sphincs::SecretKey> sk,
                const BatchSignerConfig &config = {});
    ~BatchSigner();

    BatchSigner(const BatchSigner &) = delete;
    BatchSigner &operator=(const BatchSigner &) = delete;

    /**
     * Queue one request; the future yields its signature (or the
     * exception signing raised). The request's callback, when set,
     * runs on the worker thread right before the future is
     * fulfilled; it is not invoked when signing throws.
     * @throws std::invalid_argument when optRand is non-empty and
     *         not n bytes
     */
    std::future<ByteVec> submit(SignRequest req);

    /**
     * Queue a whole batch of requests; futures are in request order.
     * Every per-request field — optRand, callback — is honored
     * exactly as if each request had been submit()ed individually.
     * The requests are consumed (moved from).
     */
    std::vector<std::future<ByteVec>>
    submitMany(std::span<SignRequest> reqs);

    /**
     * Legacy positional shim for submit(SignRequest).
     * @param opt_rand n bytes of signing randomness; empty selects
     *        the deterministic variant
     */
    std::future<ByteVec> submit(ByteVec msg, ByteVec opt_rand = {});

    /** Legacy callback shim for submit(SignRequest). */
    std::future<ByteVec> submit(ByteVec msg, SignCallback cb,
                                ByteVec opt_rand = {});

    /** Legacy message-only shim for submitMany(span<SignRequest>). */
    std::vector<std::future<ByteVec>>
    submitMany(const std::vector<ByteVec> &msgs);

    /**
     * Block until everything submitted so far has completed, then
     * return the statistics for the batch (all jobs since the last
     * drain) and start a new batch epoch.
     */
    BatchStats drain();

    /**
     * Shut down without stranding: reject new submits, fast-fail
     * every still-queued job with ServiceShutdown (their admission to
     * the completion ledger is preserved — submitted == completed
     * still converges), then join the workers. Jobs already signing
     * finish normally. Idempotent; the destructor after close() is a
     * no-op join. Contrast with plain destruction, which drains
     * gracefully by signing everything queued.
     */
    void close();

    unsigned workers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    unsigned shards() const { return queue_.shards(); }

    /** Effective cross-signature coalescing group (1 = disabled). */
    unsigned laneGroup() const { return laneGroup_; }

    /** This signer's telemetry plane (stage/group histograms, trace
     * ring). */
    telemetry::Telemetry &telemetry() { return tel_; }
    const telemetry::Telemetry &telemetry() const { return tel_; }

    const sphincs::Params &params() const { return params_; }

    /** Jobs submitted and not yet completed (approximate). */
    uint64_t pending() const
    {
        // Load completed first: a job can complete between the two
        // loads, but none can complete before being submitted, so
        // this order cannot underflow.
        const uint64_t done = completed_.load();
        const uint64_t sub = submitted_.load();
        return sub - done;
    }

  private:
    struct Worker
    {
        std::thread thread;
        std::atomic<uint64_t> signedCount{0};
    };

    void workerLoop(unsigned id);
    void processPass(Worker &w, SignJob jobs[], unsigned count);
    void signGroup(Worker &w, SignJob *const jobs[], unsigned count);
    ByteVec guardSignature(ByteVec sig, SignJob &job);
    void finishJob(Worker &w, SignJob &job, ByteVec sig);
    void failJob(SignJob &job, std::exception_ptr err);
    void completeTrace(SignJob &job, bool ok);
    void completeOne();

    sphincs::Params params_;
    // Shared immutable signing state: one key reference (no per-worker
    // copies), one scheme, one warm context reused by every sign call.
    std::shared_ptr<const sphincs::SecretKey> sk_;
    sphincs::SphincsPlus scheme_;
    sphincs::Context ctx_;
    sphincs::PublicKey pk_; ///< for the verify-after-sign guard
    ShardedMpmcQueue<SignJob> queue_;
    unsigned laneGroup_;
    bool verifyAfterSign_;
    telemetry::Telemetry tel_;
    std::vector<std::unique_ptr<Worker>> workers_;

    std::atomic<bool> closing_{false};
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> failures_{0};
    std::atomic<uint64_t> laneGroups_{0};
    std::atomic<uint64_t> crossSignJobs_{0};
    std::atomic<uint64_t> expired_{0};
    std::atomic<uint64_t> callbackErrors_{0};
    std::atomic<uint64_t> workerRestarts_{0};
    std::atomic<uint64_t> guardMismatches_{0};
    std::atomic<uint64_t> laneQuarantines_{0};

    // Batch-epoch bookkeeping, guarded by drainM_.
    std::mutex drainM_;
    std::condition_variable drainCv_;
    std::chrono::steady_clock::time_point epochStart_;
    std::chrono::steady_clock::time_point lastCompletion_;
    bool epochOpen_ = false;
    uint64_t epochJobsBase_ = 0;
    uint64_t epochStealsBase_ = 0;
    uint64_t epochFailuresBase_ = 0;
    uint64_t epochLaneGroupsBase_ = 0;
    uint64_t epochCrossSignBase_ = 0;
    uint64_t epochExpiredBase_ = 0;
    uint64_t epochCallbackErrBase_ = 0;
    uint64_t epochRestartsBase_ = 0;
    uint64_t epochGuardBase_ = 0;
    uint64_t epochQuarantineBase_ = 0;
    std::vector<uint64_t> epochWorkerBase_;
};

} // namespace herosign::batch

#endif // HEROSIGN_BATCH_BATCH_SIGNER_HH
