/**
 * @file
 * Per-batch statistics reported by BatchSigner::drain(): wall-clock
 * throughput of the real threaded run plus queue behaviour counters.
 * One "batch" is everything submitted since the previous drain().
 */

#ifndef HEROSIGN_BATCH_BATCH_STATS_HH
#define HEROSIGN_BATCH_BATCH_STATS_HH

#include <cstdint>
#include <vector>

namespace herosign::batch
{

/** Statistics for one drained batch. */
struct BatchStats
{
    uint64_t jobs = 0;         ///< jobs completed, incl. failures
    double wallUs = 0;         ///< first submit -> last completion
    double sigsPerSec = 0;     ///< successful signatures / wall clock
    uint64_t crossShardPops = 0; ///< work-stealing dequeues
    uint64_t failures = 0;     ///< jobs that completed exceptionally
    /// Cross-signature lane groups run (coalesced pops of >= 2 jobs
    /// signed in lockstep by the LaneScheduler).
    uint64_t laneGroups = 0;
    /// Jobs signed inside such a group (the rest took the
    /// within-signature scalar-batched path).
    uint64_t crossSignJobs = 0;
    /// Queued jobs dropped at dequeue because their deadline had
    /// passed (failed with DeadlineExceeded; included in failures).
    uint64_t expired = 0;
    /// Completion callbacks that threw (the signature still reached
    /// its future untouched).
    uint64_t callbackErrors = 0;
    /// Worker-loop passes aborted by an escaped exception; the worker
    /// failed its in-flight jobs and kept running.
    uint64_t workerRestarts = 0;
    /// Verify-after-sign guard mismatches (a produced signature that
    /// failed verification and was re-signed on the scalar path).
    uint64_t guardMismatches = 0;
    /// SIMD tiers quarantined by this signer's guard.
    uint64_t laneQuarantines = 0;
    /// Successful signatures per worker (failures excluded).
    std::vector<uint64_t> perWorkerSigned;
};

} // namespace herosign::batch

#endif // HEROSIGN_BATCH_BATCH_STATS_HH
