#include "batch/batch_signer.hh"

#include <algorithm>
#include <stdexcept>

#include "batch/lane_scheduler.hh"
#include "common/errors.hh"
#include "common/fault.hh"
#include "hash/sha256xN.hh"
#include "sphincs/sign_task.hh"

namespace herosign::batch
{

using sphincs::Params;
using sphincs::SecretKey;
using sphincs::SignTask;

namespace
{

/** Shared copy of @p sk whose secret seeds zeroize on release. */
std::shared_ptr<const SecretKey>
zeroizingCopy(const SecretKey &sk)
{
    return std::shared_ptr<const SecretKey>(
        new SecretKey(sk), [](const SecretKey *p) {
            auto *k = const_cast<SecretKey *>(p);
            k->zeroize();
            delete k;
        });
}

std::shared_ptr<const SecretKey>
requireKey(std::shared_ptr<const SecretKey> sk)
{
    if (!sk)
        throw std::invalid_argument("BatchSigner: null secret key");
    return sk;
}

unsigned
resolveLaneGroup(unsigned configured)
{
    if (configured == 0)
        return LaneScheduler::preferredGroup();
    return std::min(configured, LaneScheduler::maxGroup);
}

} // namespace

BatchSigner::BatchSigner(const Params &params, const SecretKey &sk,
                         const BatchSignerConfig &config)
    : BatchSigner(params, zeroizingCopy(sk), config)
{
}

BatchSigner::BatchSigner(const Params &params,
                         std::shared_ptr<const SecretKey> sk,
                         const BatchSignerConfig &config)
    : params_(params), sk_(requireKey(std::move(sk))),
      scheme_(params_, config.variant),
      ctx_(params_, sk_->pkSeed, sk_->skSeed, config.variant),
      pk_{params_, sk_->pkSeed, sk_->pkRoot},
      queue_(config.shards == 0 ? 1 : config.shards),
      laneGroup_(resolveLaneGroup(config.laneGroup)),
      verifyAfterSign_(config.verifyAfterSign),
      tel_(config.telemetry)
{
    const unsigned n = config.workers == 0 ? 1 : config.workers;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    epochWorkerBase_.assign(n, 0);
    // Start the threads only after the vector is fully built: a
    // worker indexes workers_[id] on its first instruction.
    try {
        for (unsigned i = 0; i < n; ++i)
            workers_[i]->thread =
                std::thread([this, i] { workerLoop(i); });
    } catch (...) {
        // A failed launch (thread limit) must not leave joinable
        // threads behind: destroying one calls std::terminate.
        queue_.close();
        for (auto &w : workers_) {
            if (w->thread.joinable())
                w->thread.join();
        }
        throw;
    }
}

BatchSigner::~BatchSigner()
{
    // Graceful teardown: everything still queued is signed (the
    // regression-pinned historical contract — destruction never
    // strands a future, it completes them).
    queue_.close();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

void
BatchSigner::close()
{
    closing_.store(true, std::memory_order_release);
    // Closing the queue wakes every blocked worker; remaining jobs
    // are still popped, and the closing_ flag makes processPass()
    // fast-fail them with ServiceShutdown instead of signing — no
    // future is ever stranded, just settled cheaply.
    queue_.close();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

std::future<ByteVec>
BatchSigner::submit(SignRequest req)
{
    if (closing_.load(std::memory_order_acquire))
        throw ServiceShutdown("BatchSigner: submit after close()");
    if (!req.optRand.empty() && req.optRand.size() != params_.n)
        throw std::invalid_argument(
            "BatchSigner: opt_rand must be n bytes");

    SignJob job;
    job.req = std::move(req);
    auto fut = job.promise.get_future();

    {
        std::lock_guard<std::mutex> lk(drainM_);
        if (!epochOpen_) {
            epochOpen_ = true;
            epochStart_ = std::chrono::steady_clock::now();
        }
        job.seq = submitted_.fetch_add(1, std::memory_order_relaxed);
    }
    try {
        tel_.stamp(job.trace, telemetry::Stage::Admit);
        queue_.push(std::move(job));
    } catch (...) {
        // The seq was claimed but never enqueued; account it as a
        // failed completion so drain() can still converge. (Seqs
        // stay monotonic — this one is simply skipped.)
        failures_.fetch_add(1, std::memory_order_relaxed);
        completeOne();
        if (closing_.load(std::memory_order_acquire))
            throw ServiceShutdown("BatchSigner: submit after close()");
        throw;
    }
    return fut;
}

std::vector<std::future<ByteVec>>
BatchSigner::submitMany(std::span<SignRequest> reqs)
{
    std::vector<std::future<ByteVec>> futures;
    futures.reserve(reqs.size());
    for (SignRequest &r : reqs)
        futures.push_back(submit(std::move(r)));
    return futures;
}

std::future<ByteVec>
BatchSigner::submit(ByteVec msg, ByteVec opt_rand)
{
    return submit(
        SignRequest{std::move(msg), std::move(opt_rand), {}, {}});
}

std::future<ByteVec>
BatchSigner::submit(ByteVec msg, SignCallback cb, ByteVec opt_rand)
{
    return submit(SignRequest{std::move(msg), std::move(opt_rand),
                              std::move(cb), {}});
}

std::vector<std::future<ByteVec>>
BatchSigner::submitMany(const std::vector<ByteVec> &msgs)
{
    std::vector<SignRequest> reqs(msgs.size());
    for (size_t i = 0; i < msgs.size(); ++i)
        reqs[i].message = msgs[i];
    return submitMany(std::span<SignRequest>(reqs));
}

void
BatchSigner::completeOne()
{
    {
        std::lock_guard<std::mutex> lk(drainM_);
        completed_.fetch_add(1, std::memory_order_release);
        lastCompletion_ = std::chrono::steady_clock::now();
    }
    drainCv_.notify_all();
}

void
BatchSigner::completeTrace(SignJob &job, bool ok)
{
    if (!tel_.enabled())
        return;
    tel_.stamp(job.trace, telemetry::Stage::Done);
    telemetry::RequestOutcome out;
    out.plane = telemetry::Plane::Sign;
    out.seq = job.seq;
    out.flags = job.traceFlags;
    if (!ok)
        out.flags |= telemetry::kSpanFailed;
    if (FaultInjector::armed())
        out.flags |= telemetry::kSpanFaultArmed;
    out.recordHistograms = ok;
    tel_.complete(job.trace, out);
}

ByteVec
BatchSigner::guardSignature(ByteVec sig, SignJob &job)
{
    const SignRequest &req = job.req;
    if (scheme_.verify(ctx_, req.message, sig, pk_))
        return sig;
    // The signature we just produced does not verify: quarantine the
    // SIMD tier that produced it (process-wide — a faulty vector unit
    // is not this worker's private problem) and redo the job on the
    // forced-scalar path, which the simd-lane fault seam cannot touch
    // by construction.
    job.traceFlags |= telemetry::kSpanGuardMismatch;
    guardMismatches_.fetch_add(1, std::memory_order_relaxed);
    if (sha256LanesQuarantineActiveTier() != LaneBackend::Scalar) {
        job.traceFlags |= telemetry::kSpanLaneQuarantine;
        laneQuarantines_.fetch_add(1, std::memory_order_relaxed);
    }
    ScopedScalarLanes scalar;
    ByteVec redo = scheme_.sign(ctx_, req.message, *sk_, req.optRand);
    if (scheme_.verify(ctx_, req.message, redo, pk_))
        return redo;
    // Even the scalar path cannot produce a verifiable signature —
    // fail the job rather than release bytes that might leak WOTS
    // one-time key material.
    throw SigningFault(
        "BatchSigner: signature failed verify-after-sign twice");
}

void
BatchSigner::finishJob(Worker &w, SignJob &job, ByteVec sig)
{
    if (job.req.callback) {
        // A throwing callback must not poison the finished
        // signature: isolate it from the signing path and count it.
        try {
            FaultInjector::throwIfFires(FaultPoint::CallbackThrow);
            job.req.callback(job.seq, sig);
        } catch (...) {
            callbackErrors_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    job.promise.set_value(std::move(sig));
    job.settled = true;
    completeTrace(job, true);
    w.signedCount.fetch_add(1, std::memory_order_relaxed);
    completeOne();
}

void
BatchSigner::failJob(SignJob &job, std::exception_ptr err)
{
    if (job.settled)
        return;
    failures_.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_exception(std::move(err));
    job.settled = true;
    completeTrace(job, false);
    completeOne();
}

void
BatchSigner::signGroup(Worker &w, SignJob *const jobs[],
                       unsigned count)
{
    for (unsigned i = 0; i < count; ++i)
        tel_.stamp(jobs[i]->trace, telemetry::Stage::GroupFormed);
    tel_.recordGroup(telemetry::Plane::Sign, count, laneGroup_);

    if (count == 1) {
        // Within-signature path: lanes fill only inside this one
        // signature's trees. This is also the honest baseline the
        // cross-signature bench mode compares against.
        SignJob &job = *jobs[0];
        try {
            tel_.stamp(job.trace, telemetry::Stage::CryptoStart);
            ByteVec sig = scheme_.sign(ctx_, job.req.message, *sk_,
                                       job.req.optRand);
            tel_.stamp(job.trace, telemetry::Stage::CryptoEnd);
            if (verifyAfterSign_)
                sig = guardSignature(std::move(sig), job);
            tel_.stamp(job.trace, telemetry::Stage::GuardEnd);
            finishJob(w, job, std::move(sig));
        } catch (...) {
            failJob(job, std::current_exception());
        }
        return;
    }

    // Cross-signature path: run the whole group in lockstep, hash
    // lanes filled across signatures. Task construction (prfMsg +
    // digest) can throw per job; a failed member is dropped from the
    // group and the survivors still sign together.
    std::unique_ptr<SignTask> tasks[LaneScheduler::maxGroup];
    SignTask *ptrs[LaneScheduler::maxGroup];
    unsigned live[LaneScheduler::maxGroup];
    unsigned nlive = 0;
    for (unsigned i = 0; i < count; ++i) {
        try {
            tasks[nlive] = std::make_unique<SignTask>(
                ctx_, *sk_, jobs[i]->req.message,
                jobs[i]->req.optRand);
            ptrs[nlive] = tasks[nlive].get();
            live[nlive] = i;
            ++nlive;
        } catch (...) {
            failJob(*jobs[i], std::current_exception());
        }
    }
    if (nlive == 0)
        return;
    for (unsigned i = 0; i < nlive; ++i)
        tel_.stamp(jobs[live[i]]->trace,
                   telemetry::Stage::CryptoStart);
    bool ran = false;
    try {
        LaneScheduler::run(ptrs, nlive);
        ran = true;
    } catch (...) {
        // A group-wide failure fails every member.
        for (unsigned i = 0; i < nlive; ++i)
            failJob(*jobs[live[i]], std::current_exception());
    }
    if (!ran)
        return;
    for (unsigned i = 0; i < nlive; ++i)
        tel_.stamp(jobs[live[i]]->trace, telemetry::Stage::CryptoEnd);
    laneGroups_.fetch_add(1, std::memory_order_relaxed);
    crossSignJobs_.fetch_add(nlive, std::memory_order_relaxed);
    for (unsigned i = 0; i < nlive; ++i) {
        SignJob &job = *jobs[live[i]];
        try {
            ByteVec sig = tasks[i]->takeSignature();
            if (verifyAfterSign_)
                sig = guardSignature(std::move(sig), job);
            tel_.stamp(job.trace, telemetry::Stage::GuardEnd);
            finishJob(w, job, std::move(sig));
        } catch (...) {
            failJob(job, std::current_exception());
        }
    }
}

void
BatchSigner::processPass(Worker &w, SignJob jobs[], unsigned count)
{
    // Admission filter at dequeue time: a closing signer fast-fails
    // everything still queued, and per-request deadlines drop work
    // that is already too late to be useful — in both cases the
    // promise is settled with a typed error, never stranded.
    SignJob *live[LaneScheduler::maxGroup];
    unsigned n = 0;
    const bool closing = closing_.load(std::memory_order_acquire);
    const auto now = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < count; ++i) {
        if (closing) {
            failJob(jobs[i],
                    std::make_exception_ptr(ServiceShutdown(
                        "BatchSigner: closed while the job was "
                        "still queued")));
            continue;
        }
        if (jobs[i].req.deadline && now > *jobs[i].req.deadline) {
            expired_.fetch_add(1, std::memory_order_relaxed);
            jobs[i].traceFlags |= telemetry::kSpanExpired;
            failJob(jobs[i],
                    std::make_exception_ptr(DeadlineExceeded(
                        "BatchSigner: deadline passed while the "
                        "job was queued")));
            continue;
        }
        live[n++] = &jobs[i];
    }
    if (n > 0)
        signGroup(w, live, n);
}

void
BatchSigner::workerLoop(unsigned id)
{
    Worker &w = *workers_[id];
    const unsigned home = id % queue_.shards();
    SignJob jobs[LaneScheduler::maxGroup];
    while (queue_.pop(jobs[0], home)) {
        // Coalesce whatever is already queued — never wait for more:
        // an idle queue signs the single job immediately, a
        // backlogged one fills the lane group.
        tel_.stamp(jobs[0].trace, telemetry::Stage::Dequeue);
        unsigned got = 1;
        while (got < laneGroup_ && queue_.tryPop(jobs[got], home)) {
            tel_.stamp(jobs[got].trace, telemetry::Stage::Dequeue);
            ++got;
        }
        try {
            if (FaultInjector::fire(FaultPoint::QueueStall))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        FaultInjector::instance().stallMs()));
            FaultInjector::throwIfFires(FaultPoint::WorkerThrow);
            processPass(w, jobs, got);
        } catch (...) {
            // Supervision: an exception that escapes a pass fails
            // only the jobs of THIS pass that are not yet settled —
            // then the worker keeps running (an in-place restart, so
            // the pool never shrinks and queued work behind the
            // fault still gets signed).
            for (unsigned i = 0; i < got; ++i)
                failJob(jobs[i], std::current_exception());
            workerRestarts_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

BatchStats
BatchSigner::drain()
{
    std::unique_lock<std::mutex> lk(drainM_);
    drainCv_.wait(lk, [&] {
        return completed_.load(std::memory_order_acquire) ==
               submitted_.load(std::memory_order_acquire);
    });

    BatchStats st;
    const uint64_t done = completed_.load(std::memory_order_acquire);
    st.jobs = done - epochJobsBase_;
    if (epochOpen_ && st.jobs > 0) {
        // Wall clock runs from the first submit of the epoch to the
        // last completion, not to this (possibly late) drain call.
        st.wallUs = std::chrono::duration<double, std::micro>(
                        lastCompletion_ - epochStart_)
                        .count();
    }
    st.crossShardPops = queue_.steals() - epochStealsBase_;
    st.failures =
        failures_.load(std::memory_order_relaxed) - epochFailuresBase_;
    const uint64_t groups =
        laneGroups_.load(std::memory_order_relaxed);
    const uint64_t crossJobs =
        crossSignJobs_.load(std::memory_order_relaxed);
    st.laneGroups = groups - epochLaneGroupsBase_;
    st.crossSignJobs = crossJobs - epochCrossSignBase_;
    const uint64_t exp = expired_.load(std::memory_order_relaxed);
    const uint64_t cbe =
        callbackErrors_.load(std::memory_order_relaxed);
    const uint64_t rst =
        workerRestarts_.load(std::memory_order_relaxed);
    const uint64_t grd =
        guardMismatches_.load(std::memory_order_relaxed);
    const uint64_t qrn =
        laneQuarantines_.load(std::memory_order_relaxed);
    st.expired = exp - epochExpiredBase_;
    st.callbackErrors = cbe - epochCallbackErrBase_;
    st.workerRestarts = rst - epochRestartsBase_;
    st.guardMismatches = grd - epochGuardBase_;
    st.laneQuarantines = qrn - epochQuarantineBase_;
    const uint64_t ok = st.jobs - st.failures;
    st.sigsPerSec = st.wallUs > 0 ? ok * 1e6 / st.wallUs : 0.0;
    st.perWorkerSigned.resize(workers_.size());
    for (size_t i = 0; i < workers_.size(); ++i) {
        const uint64_t c =
            workers_[i]->signedCount.load(std::memory_order_relaxed);
        st.perWorkerSigned[i] = c - epochWorkerBase_[i];
        epochWorkerBase_[i] = c;
    }

    // Open a fresh epoch for the next batch.
    epochJobsBase_ = done;
    epochStealsBase_ = queue_.steals();
    epochFailuresBase_ = failures_.load(std::memory_order_relaxed);
    epochLaneGroupsBase_ = groups;
    epochCrossSignBase_ = crossJobs;
    epochExpiredBase_ = exp;
    epochCallbackErrBase_ = cbe;
    epochRestartsBase_ = rst;
    epochGuardBase_ = grd;
    epochQuarantineBase_ = qrn;
    epochOpen_ = false;
    return st;
}

} // namespace herosign::batch
