#include "batch/batch_signer.hh"

#include <stdexcept>

namespace herosign::batch
{

using sphincs::Params;
using sphincs::SecretKey;

namespace
{

/** Shared copy of @p sk whose secret seeds zeroize on release. */
std::shared_ptr<const SecretKey>
zeroizingCopy(const SecretKey &sk)
{
    return std::shared_ptr<const SecretKey>(
        new SecretKey(sk), [](const SecretKey *p) {
            auto *k = const_cast<SecretKey *>(p);
            k->zeroize();
            delete k;
        });
}

std::shared_ptr<const SecretKey>
requireKey(std::shared_ptr<const SecretKey> sk)
{
    if (!sk)
        throw std::invalid_argument("BatchSigner: null secret key");
    return sk;
}

} // namespace

BatchSigner::BatchSigner(const Params &params, const SecretKey &sk,
                         const BatchSignerConfig &config)
    : BatchSigner(params, zeroizingCopy(sk), config)
{
}

BatchSigner::BatchSigner(const Params &params,
                         std::shared_ptr<const SecretKey> sk,
                         const BatchSignerConfig &config)
    : params_(params), sk_(requireKey(std::move(sk))),
      scheme_(params_, config.variant),
      ctx_(params_, sk_->pkSeed, sk_->skSeed, config.variant),
      queue_(config.shards == 0 ? 1 : config.shards)
{
    const unsigned n = config.workers == 0 ? 1 : config.workers;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    epochWorkerBase_.assign(n, 0);
    // Start the threads only after the vector is fully built: a
    // worker indexes workers_[id] on its first instruction.
    try {
        for (unsigned i = 0; i < n; ++i)
            workers_[i]->thread =
                std::thread([this, i] { workerLoop(i); });
    } catch (...) {
        // A failed launch (thread limit) must not leave joinable
        // threads behind: destroying one calls std::terminate.
        queue_.close();
        for (auto &w : workers_) {
            if (w->thread.joinable())
                w->thread.join();
        }
        throw;
    }
}

BatchSigner::~BatchSigner()
{
    queue_.close();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

std::future<ByteVec>
BatchSigner::enqueue(ByteVec msg, ByteVec opt_rand, SignCallback cb)
{
    if (!opt_rand.empty() && opt_rand.size() != params_.n)
        throw std::invalid_argument(
            "BatchSigner: opt_rand must be n bytes");

    SignRequest req;
    req.message = std::move(msg);
    req.optRand = std::move(opt_rand);
    req.callback = std::move(cb);
    auto fut = req.promise.get_future();

    {
        std::lock_guard<std::mutex> lk(drainM_);
        if (!epochOpen_) {
            epochOpen_ = true;
            epochStart_ = std::chrono::steady_clock::now();
        }
        req.seq = submitted_.fetch_add(1, std::memory_order_relaxed);
    }
    try {
        queue_.push(std::move(req));
    } catch (...) {
        // The seq was claimed but never enqueued; account it as a
        // failed completion so drain() can still converge. (Seqs
        // stay monotonic — this one is simply skipped.)
        failures_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lk(drainM_);
            completed_.fetch_add(1, std::memory_order_release);
            lastCompletion_ = std::chrono::steady_clock::now();
        }
        drainCv_.notify_all();
        throw;
    }
    return fut;
}

std::future<ByteVec>
BatchSigner::submit(ByteVec msg, ByteVec opt_rand)
{
    return enqueue(std::move(msg), std::move(opt_rand), {});
}

std::future<ByteVec>
BatchSigner::submit(ByteVec msg, SignCallback cb, ByteVec opt_rand)
{
    return enqueue(std::move(msg), std::move(opt_rand), std::move(cb));
}

std::vector<std::future<ByteVec>>
BatchSigner::submitMany(const std::vector<ByteVec> &msgs)
{
    std::vector<std::future<ByteVec>> futures;
    futures.reserve(msgs.size());
    for (const ByteVec &m : msgs)
        futures.push_back(submit(m));
    return futures;
}

void
BatchSigner::workerLoop(unsigned id)
{
    Worker &w = *workers_[id];
    const unsigned home = id % queue_.shards();
    SignRequest req;
    while (queue_.pop(req, home)) {
        try {
            // Warm shared context: read-only state, no construction.
            ByteVec sig =
                scheme_.sign(ctx_, req.message, *sk_, req.optRand);
            if (req.callback) {
                // A throwing callback must not poison the finished
                // signature: isolate it from the signing try-block.
                try {
                    req.callback(req.seq, sig);
                } catch (...) {
                }
            }
            req.promise.set_value(std::move(sig));
            w.signedCount.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
            failures_.fetch_add(1, std::memory_order_relaxed);
            req.promise.set_exception(std::current_exception());
        }
        {
            std::lock_guard<std::mutex> lk(drainM_);
            completed_.fetch_add(1, std::memory_order_release);
            lastCompletion_ = std::chrono::steady_clock::now();
        }
        drainCv_.notify_all();
    }
}

BatchStats
BatchSigner::drain()
{
    std::unique_lock<std::mutex> lk(drainM_);
    drainCv_.wait(lk, [&] {
        return completed_.load(std::memory_order_acquire) ==
               submitted_.load(std::memory_order_acquire);
    });

    BatchStats st;
    const uint64_t done = completed_.load(std::memory_order_acquire);
    st.jobs = done - epochJobsBase_;
    if (epochOpen_ && st.jobs > 0) {
        // Wall clock runs from the first submit of the epoch to the
        // last completion, not to this (possibly late) drain call.
        st.wallUs = std::chrono::duration<double, std::micro>(
                        lastCompletion_ - epochStart_)
                        .count();
    }
    st.crossShardPops = queue_.steals() - epochStealsBase_;
    st.failures =
        failures_.load(std::memory_order_relaxed) - epochFailuresBase_;
    const uint64_t ok = st.jobs - st.failures;
    st.sigsPerSec = st.wallUs > 0 ? ok * 1e6 / st.wallUs : 0.0;
    st.perWorkerSigned.resize(workers_.size());
    for (size_t i = 0; i < workers_.size(); ++i) {
        const uint64_t c =
            workers_[i]->signedCount.load(std::memory_order_relaxed);
        st.perWorkerSigned[i] = c - epochWorkerBase_[i];
        epochWorkerBase_[i] = c;
    }

    // Open a fresh epoch for the next batch.
    epochJobsBase_ = done;
    epochStealsBase_ = queue_.steals();
    epochFailuresBase_ = failures_.load(std::memory_order_relaxed);
    epochOpen_ = false;
    return st;
}

} // namespace herosign::batch
