/**
 * @file
 * LaneScheduler: cross-signature sign-side lane batching.
 *
 * Verification has filled SIMD lanes across signatures since PR 4;
 * signing still batched only within one signature — one layer's
 * ragged WOTS chains, one tree's leaves — so the 16-lane engine
 * starves on the -f parameter shapes (8..16 WOTS leaves per subtree).
 * The LaneScheduler closes that gap: it walks a group of resumable
 * sphincs::SignTask contexts through FORS and the d hypertree layers
 * in lockstep, pooling every leaf descriptor and every same-shape
 * tree combine across the group, so lanes stay saturated regardless
 * of parameter-set shape. The signing keypairs' WOTS signatures are
 * captured from the pooled pk-generation walks, eliminating the
 * separate per-layer wotsSign() chain walk entirely.
 *
 * Group members must share one warm Context (same key, same
 * parameter set) — mixed-parameter-set groups are rejected with
 * std::invalid_argument. Output signatures are byte-identical to the
 * scalar SphincsPlus::sign() path at every lane width and group size.
 */

#ifndef HEROSIGN_BATCH_LANE_SCHEDULER_HH
#define HEROSIGN_BATCH_LANE_SCHEDULER_HH

#include "common/bytes.hh"
#include "sphincs/sign_task.hh"
#include "sphincs/thashx.hh"

namespace herosign::batch
{

/** Static driver for groups of in-flight signatures. */
class LaneScheduler
{
  public:
    /** Largest lockstep group (the lane-batch hard bound). */
    static constexpr unsigned maxGroup = sphincs::maxHashLanes;

    /**
     * The group size worth coalescing toward on this host: the
     * dispatched hash-lane width (16 with AVX-512, 8 elsewhere).
     * Larger groups still help (combine pooling, tail amortization)
     * up to maxGroup but with diminishing returns.
     */
    static unsigned preferredGroup()
    {
        return sphincs::hashLaneWidth();
    }

    /**
     * Run @p count tasks (1..maxGroup) to completion in lockstep:
     * FORS tree by tree, then layer by layer, every hash pooled
     * across the group. All tasks must share one Context object.
     * @throws std::invalid_argument on a mixed group
     */
    static void run(sphincs::SignTask *const tasks[], unsigned count);

    /**
     * Convenience wrapper: sign @p count messages under one key as
     * one pooled group. opt_rands[i] may be empty (deterministic
     * signing); @p opt_rands itself may be nullptr for all-
     * deterministic. sigs[i] receives the signature for msgs[i].
     */
    static void signGroup(const sphincs::Context &ctx,
                          const sphincs::SecretKey &sk,
                          const ByteSpan msgs[], const ByteSpan opt_rands[],
                          ByteVec sigs[], unsigned count);
};

} // namespace herosign::batch

#endif // HEROSIGN_BATCH_LANE_SCHEDULER_HH
