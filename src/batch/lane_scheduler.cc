#include "batch/lane_scheduler.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

namespace herosign::batch
{

using sphincs::Context;
using sphincs::ForsLeafReq;
using sphincs::maxHashLanes;
using sphincs::maxN;
using sphincs::SecretKey;
using sphincs::SignTask;
using sphincs::TreehashStream;
using sphincs::WotsLeafReq;

namespace
{

/** Leaf positions generated per pooled wave (bounds the slab). */
constexpr uint32_t posChunk = maxHashLanes;

} // namespace

void
LaneScheduler::run(SignTask *const tasks[], unsigned count)
{
    if (count == 0)
        return;
    if (count > maxGroup)
        throw std::invalid_argument(
            "LaneScheduler: group exceeds maxGroup");
    const Context &ctx = tasks[0]->context();
    for (unsigned g = 1; g < count; ++g) {
        // One warm context per group is the invariant everything
        // else rests on: same key, same parameter set, same seeded
        // hash mid-state. Tasks built from a different Context —
        // even one with equal seeds — are rejected rather than
        // silently mixed.
        if (&tasks[g]->context() != &ctx)
            throw std::invalid_argument(
                "LaneScheduler: group must share one context "
                "(one key and parameter set)");
    }
    const sphincs::Params &p = ctx.params();
    const unsigned n = p.n;

    TreehashStream *streams[maxHashLanes];
    const uint8_t *leaf_ptrs[maxHashLanes];

    // --- FORS: tree i of every task advances together -------------
    // Leaf generation pools count * posChunk PRF+F calls per wave;
    // the absorb cascades pool the same-shape combines group-wide.
    const uint32_t t = p.forsLeaves();
    uint8_t slab[posChunk * maxHashLanes * maxN];
    ForsLeafReq freqs[posChunk * maxHashLanes];
    for (unsigned i = 0; i < p.forsTrees; ++i) {
        for (unsigned g = 0; g < count; ++g) {
            tasks[g]->beginForsTree(i);
            streams[g] = &tasks[g]->treeStream();
        }
        for (uint32_t p0 = 0; p0 < t; p0 += posChunk) {
            const uint32_t pc = std::min<uint32_t>(posChunk, t - p0);
            unsigned nr = 0;
            for (uint32_t q = 0; q < pc; ++q)
                for (unsigned g = 0; g < count; ++g) {
                    freqs[nr] = tasks[g]->forsLeafReq(
                        p0 + q, slab + static_cast<size_t>(nr) * n);
                    ++nr;
                }
            forsLeafBatch(ctx, freqs, nr);
            for (uint32_t q = 0; q < pc; ++q) {
                for (unsigned g = 0; g < count; ++g)
                    leaf_ptrs[g] =
                        slab +
                        static_cast<size_t>(q * count + g) * n;
                TreehashStream::absorbLockstep(streams, leaf_ptrs,
                                               count);
            }
        }
        for (unsigned g = 0; g < count; ++g)
            tasks[g]->endForsTree();
    }
    for (unsigned g = 0; g < count; ++g)
        tasks[g]->finishFors();

    // --- Hypertree: the d layers are the serial spine; within one
    // layer the group's count * 2^(h/d) WOTS leaves pool into full
    // chain batches, with the signing leaves' signatures captured in
    // passing.
    const uint32_t leaves = p.treeLeaves();
    std::vector<WotsLeafReq> wreqs(
        static_cast<size_t>(std::min<uint32_t>(posChunk, leaves)) *
        count);
    for (unsigned l = 0; l < p.layers; ++l) {
        for (unsigned g = 0; g < count; ++g) {
            tasks[g]->beginLayer(l);
            streams[g] = &tasks[g]->treeStream();
        }
        for (uint32_t j0 = 0; j0 < leaves; j0 += posChunk) {
            const uint32_t jc = std::min<uint32_t>(posChunk, leaves - j0);
            unsigned nr = 0;
            for (uint32_t q = 0; q < jc; ++q)
                for (unsigned g = 0; g < count; ++g)
                    wreqs[nr++] = tasks[g]->wotsLeafReq(j0 + q);
            wotsLeafBatch(ctx, wreqs.data(), nr);
            for (uint32_t q = 0; q < jc; ++q) {
                for (unsigned g = 0; g < count; ++g)
                    leaf_ptrs[g] = tasks[g]->layerLeaf(j0 + q);
                TreehashStream::absorbLockstep(streams, leaf_ptrs,
                                               count);
            }
        }
        for (unsigned g = 0; g < count; ++g)
            tasks[g]->endLayer();
    }
}

void
LaneScheduler::signGroup(const Context &ctx, const SecretKey &sk,
                         const ByteSpan msgs[], const ByteSpan opt_rands[],
                         ByteVec sigs[], unsigned count)
{
    if (count == 0)
        return;
    if (count > maxGroup)
        throw std::invalid_argument(
            "LaneScheduler: group exceeds maxGroup");
    std::vector<std::unique_ptr<SignTask>> tasks;
    tasks.reserve(count);
    SignTask *ptrs[maxGroup];
    for (unsigned i = 0; i < count; ++i) {
        tasks.push_back(std::make_unique<SignTask>(
            ctx, sk, msgs[i], opt_rands ? opt_rands[i] : ByteSpan{}));
        ptrs[i] = tasks.back().get();
    }
    run(ptrs, count);
    for (unsigned i = 0; i < count; ++i)
        sigs[i] = tasks[i]->takeSignature();
}

} // namespace herosign::batch
