/**
 * @file
 * Deterministic and OS-seeded randomness.
 *
 * Key generation and benchmarks need a reproducible randomness source
 * so experiments are rerunnable; Rng wraps a SplitMix64/xoshiro256**
 * generator that can be seeded explicitly (tests, benches) or from the
 * OS (examples that want fresh keys).
 */

#ifndef HEROSIGN_COMMON_RANDOM_HH
#define HEROSIGN_COMMON_RANDOM_HH

#include <cstdint>

#include "common/bytes.hh"

namespace herosign
{

/**
 * Small, fast, seedable PRNG (xoshiro256** seeded via SplitMix64).
 * Not a CSPRNG; used for reproducible experiment inputs. Use
 * Rng::fromOs() when non-reproducible seeding is desired.
 */
class Rng
{
  public:
    /** Construct with an explicit 64-bit seed (deterministic). */
    explicit Rng(uint64_t seed);

    /** Construct seeded from std::random_device. */
    static Rng fromOs();

    /** Next 64 random bits. */
    uint64_t next();

    /** Uniform value in [0, bound) (bound must be non-zero). */
    uint64_t below(uint64_t bound);

    /** Fill @p out with random bytes. */
    void fill(MutByteSpan out);

    /** Convenience: a fresh random byte vector of length @p len. */
    ByteVec bytes(size_t len);

  private:
    uint64_t s_[4];
};

} // namespace herosign

#endif // HEROSIGN_COMMON_RANDOM_HH
