#include "common/fault.hh"

#include <cstdlib>

namespace herosign
{

namespace detail
{
std::atomic<bool> faultArmed{false};
} // namespace detail

namespace
{

const char *const kPointNames[faultPointCount] = {
    "hash-compress", "simd-lane", "worker-throw", "queue-stall",
    "callback-throw",
};

/** splitmix64 finalizer: the deterministic seed/index mixer. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

uint64_t
parseU64(const std::string &clause, const std::string &text)
{
    size_t used = 0;
    uint64_t v = 0;
    try {
        v = std::stoull(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != text.size())
        throw std::invalid_argument("fault plan: bad number '" + text +
                                    "' in clause '" + clause + "'");
    return v;
}

} // namespace

const char *
faultPointName(FaultPoint point)
{
    return kPointNames[static_cast<unsigned>(point)];
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos <= spec.size()) {
        const size_t end = std::min(spec.find(';', pos), spec.size());
        std::string clause = spec.substr(pos, end - pos);
        pos = end + 1;
        // Trim surrounding whitespace so multi-line env values work.
        const size_t b = clause.find_first_not_of(" \t\n");
        if (b == std::string::npos)
            continue;
        clause = clause.substr(b, clause.find_last_not_of(" \t\n") -
                                      b + 1);

        if (clause.rfind("seed=", 0) == 0) {
            plan.seed = parseU64(clause, clause.substr(5));
            continue;
        }

        const size_t colon = std::min(clause.find(':'), clause.size());
        const std::string name = clause.substr(0, colon);
        int point = -1;
        for (unsigned i = 0; i < faultPointCount; ++i) {
            if (name == kPointNames[i])
                point = static_cast<int>(i);
        }
        if (point < 0)
            throw std::invalid_argument(
                "fault plan: unknown injection point '" + name + "'");
        FaultRule &rule = plan.rules[point];
        rule.active = true;

        size_t sp = colon;
        while (sp < clause.size()) {
            const size_t se =
                std::min(clause.find(':', sp + 1), clause.size());
            const std::string kv = clause.substr(sp + 1, se - sp - 1);
            sp = se;
            const size_t eq = kv.find('=');
            if (eq == std::string::npos)
                throw std::invalid_argument(
                    "fault plan: expected key=value, got '" + kv +
                    "' in clause '" + clause + "'");
            const std::string key = kv.substr(0, eq);
            const uint64_t val = parseU64(clause, kv.substr(eq + 1));
            if (key == "every") {
                if (val == 0)
                    throw std::invalid_argument(
                        "fault plan: every=0 in clause '" + clause +
                        "'");
                rule.every = val;
            } else if (key == "start") {
                rule.start = val;
            } else if (key == "max") {
                rule.max = val;
            } else if (key == "ms") {
                rule.ms = val;
            } else {
                throw std::invalid_argument(
                    "fault plan: unknown key '" + key +
                    "' in clause '" + clause + "'");
            }
        }
    }
    return plan;
}

bool
FaultPlan::anyActive() const
{
    for (const FaultRule &r : rules) {
        if (r.active)
            return true;
    }
    return false;
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector inj;
    return inj;
}

FaultInjector::FaultInjector()
{
    for (unsigned i = 0; i < faultPointCount; ++i) {
        hits_[i].store(0, std::memory_order_relaxed);
        fired_[i].store(0, std::memory_order_relaxed);
    }
    // Environment arming: parsed once here (the singleton is built on
    // the first seam hit or test access). A malformed plan throws —
    // a CI matrix entry with a typo must fail, not silently run
    // fault-free.
    if (const char *env = std::getenv("HEROSIGN_FAULT_PLAN")) {
        if (env[0] != '\0')
            arm(FaultPlan::parse(env));
    }
}

void
FaultInjector::arm(const FaultPlan &plan)
{
    // Publish plan before the armed flag: seams acquire-load the flag
    // and only then read the plan. Never swap plans under live
    // traffic — arm/disarm around a drained window.
    detail::faultArmed.store(false, std::memory_order_release);
    plan_ = plan;
    for (unsigned i = 0; i < faultPointCount; ++i) {
        hits_[i].store(0, std::memory_order_relaxed);
        fired_[i].store(0, std::memory_order_relaxed);
    }
    detail::faultArmed.store(plan.anyActive(),
                             std::memory_order_release);
}

void
FaultInjector::disarm()
{
    detail::faultArmed.store(false, std::memory_order_release);
}

uint64_t
FaultInjector::hits(FaultPoint point) const
{
    return hits_[static_cast<unsigned>(point)].load(
        std::memory_order_relaxed);
}

uint64_t
FaultInjector::fired(FaultPoint point) const
{
    return fired_[static_cast<unsigned>(point)].load(
        std::memory_order_relaxed);
}

unsigned
FaultInjector::laneFor(uint64_t fire_index, unsigned limit) const
{
    return static_cast<unsigned>(mix64(plan_.seed ^ fire_index) %
                                 limit);
}

bool
FaultInjector::fireArmed(FaultPoint point)
{
    const unsigned i = static_cast<unsigned>(point);
    const FaultRule &rule = plan_.rules[i];
    if (!rule.active)
        return false;
    // Hit indices are 1-based fetch_add results: the schedule is a
    // pure function of the index, so the SET of firing indices is
    // fixed — under concurrency only which thread draws a firing
    // index varies, never how many fire.
    const uint64_t hit =
        hits_[i].fetch_add(1, std::memory_order_relaxed) + 1;
    if (hit <= rule.start)
        return false;
    if ((hit - rule.start - 1) % rule.every != 0)
        return false;
    const uint64_t nth =
        fired_[i].fetch_add(1, std::memory_order_relaxed) + 1;
    if (nth > rule.max) {
        fired_[i].fetch_sub(1, std::memory_order_relaxed);
        return false;
    }
    return true;
}

void
FaultInjector::throwIfFires(FaultPoint point)
{
    if (fire(point))
        throw FaultInjected(std::string("injected fault: ") +
                            faultPointName(point));
}

} // namespace herosign
