/**
 * @file
 * Hex encoding/decoding used by tests, examples and bench output.
 */

#ifndef HEROSIGN_COMMON_HEX_HH
#define HEROSIGN_COMMON_HEX_HH

#include <string>
#include <string_view>

#include "common/bytes.hh"

namespace herosign
{

/** Encode @p data as a lowercase hex string. */
std::string hexEncode(ByteSpan data);

/**
 * Decode a hex string (upper or lower case, no separators).
 * @throws std::invalid_argument on odd length or non-hex characters.
 */
ByteVec hexDecode(std::string_view hex);

} // namespace herosign

#endif // HEROSIGN_COMMON_HEX_HH
