/**
 * @file
 * Minimal ASCII table printer used by the benchmark harness so every
 * table/figure bench prints paper-style rows in a uniform format, with
 * an optional CSV mode for downstream plotting.
 */

#ifndef HEROSIGN_COMMON_TABLE_HH
#define HEROSIGN_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace herosign
{

/**
 * A simple column-aligned text table. Collect rows of strings, then
 * render aligned text or CSV.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> row);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render as aligned ASCII (with header rule). */
    std::string render() const;

    /** Render as CSV (separators skipped). */
    std::string renderCsv() const;

    /** Number of data rows (separators excluded). */
    size_t rowCount() const;

    const std::vector<std::string> &headers() const { return headers_; }

    /** Raw rows; separators are encoded as empty vectors. */
    const std::vector<std::vector<std::string>> &rawRows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    // Separator rows are encoded as empty vectors.
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals digits after the point. */
std::string fmtF(double v, int decimals = 2);

/** Format as "1.23x" speedup notation. */
std::string fmtX(double v, int decimals = 2);

/** Format an integer with thousands separators ("12,345,678"). */
std::string fmtGrouped(uint64_t v);

} // namespace herosign

#endif // HEROSIGN_COMMON_TABLE_HH
