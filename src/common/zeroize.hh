/**
 * @file
 * Secure zeroization for secret key material. A plain memset before a
 * free is dead-store-eliminated by optimizing compilers; writing
 * through a volatile pointer forces the stores to happen, so secrets
 * do not linger in deallocated heap pages.
 */

#ifndef HEROSIGN_COMMON_ZEROIZE_HH
#define HEROSIGN_COMMON_ZEROIZE_HH

#include <cstddef>
#include <cstdint>

#include "common/bytes.hh"

namespace herosign
{

/** Overwrite @p len bytes at @p p with zeros, never elided. */
inline void
secureZero(void *p, size_t len)
{
    volatile uint8_t *vp = static_cast<volatile uint8_t *>(p);
    for (size_t i = 0; i < len; ++i)
        vp[i] = 0;
}

/** Zeroize a byte vector's contents (the allocation is kept). */
inline void
secureZero(ByteVec &v)
{
    if (!v.empty())
        secureZero(v.data(), v.size());
}

} // namespace herosign

#endif // HEROSIGN_COMMON_ZEROIZE_HH
