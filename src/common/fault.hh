/**
 * @file
 * Deterministic, seeded fault injection for the signing plane.
 *
 * A FaultInjector owns a FaultPlan of named injection points wired as
 * seams into the hash lanes (sha256xN/thashx), the batch and service
 * worker loops, and the completion-callback sites. When no plan is
 * armed the seams cost one relaxed atomic load and a branch — there
 * is exactly one global armed flag, checked before anything else is
 * touched.
 *
 * Plans are deterministic counters, not coin flips: each point fires
 * on a fixed schedule over its hit sequence (`start`, then every
 * `every`-th hit, at most `max` times), so a fixed plan over a fixed
 * amount of work always injects the same number of faults — the chaos
 * suite's assertions hold run over run. The `seed` only perturbs
 * tie-break choices (which SIMD lane to corrupt), never whether a
 * fault fires.
 *
 * Plan grammar (the HEROSIGN_FAULT_PLAN environment variable, parsed
 * once at first use; tests arm programmatically via arm()):
 *
 *   plan    := clause (';' clause)*
 *   clause  := 'seed=' u64
 *            | point (':' key '=' u64)*
 *   point   := 'hash-compress'   bit-flip one lane's chaining state
 *            | 'simd-lane'       corrupt one SIMD-produced digest in a
 *                                fused one-block hash batch (never
 *                                fires on the scalar tail, so a
 *                                forced-scalar path is immune)
 *            | 'worker-throw'    throw FaultInjected from a worker
 *                                loop, outside the per-job handlers
 *            | 'queue-stall'     sleep a worker before it processes a
 *                                pass (models a stalled consumer)
 *            | 'callback-throw'  throw from inside a completion
 *                                callback invocation
 *   key     := 'every'  fire on every Nth hit (default 1)
 *            | 'start'  skip the first N hits (default 0)
 *            | 'max'    stop after N fires (default unlimited)
 *            | 'ms'     stall duration, queue-stall only (default 1)
 *
 *   e.g. HEROSIGN_FAULT_PLAN='seed=7;simd-lane:every=5:max=40;
 *        worker-throw:start=10:every=97;queue-stall:every=50:ms=2'
 */

#ifndef HEROSIGN_COMMON_FAULT_HH
#define HEROSIGN_COMMON_FAULT_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace herosign
{

/** Thrown by the worker-throw / callback-throw injection points. */
class FaultInjected : public std::runtime_error
{
  public:
    explicit FaultInjected(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** The named injection points (grammar names in fault.cc). */
enum class FaultPoint : unsigned {
    HashCompress,  ///< bit-flip a lane's SHA-256 chaining state
    SimdLane,      ///< corrupt one SIMD lane digest in thashx
    WorkerThrow,   ///< exception escaping a worker loop
    QueueStall,    ///< stall a worker before a processing pass
    CallbackThrow, ///< exception from a completion callback
};

constexpr unsigned faultPointCount = 5;

/** Name of @p point as used in the plan grammar. */
const char *faultPointName(FaultPoint point);

/** One injection point's deterministic firing schedule. */
struct FaultRule
{
    bool active = false;
    uint64_t every = 1; ///< fire on every Nth eligible hit
    uint64_t start = 0; ///< skip the first `start` hits entirely
    uint64_t max = UINT64_MAX; ///< total fires allowed
    uint64_t ms = 1;    ///< stall duration (queue-stall only)
};

/** A parsed fault plan: a seed plus one rule per injection point. */
struct FaultPlan
{
    uint64_t seed = 1;
    FaultRule rules[faultPointCount];

    /**
     * Parse the plan grammar documented in the file header.
     * @throws std::invalid_argument on any token it does not know —
     *         a typo in a CI fault-matrix plan must fail loudly, not
     *         silently test nothing
     */
    static FaultPlan parse(const std::string &spec);

    bool anyActive() const;

    const FaultRule &rule(FaultPoint p) const
    {
        return rules[static_cast<unsigned>(p)];
    }
    FaultRule &rule(FaultPoint p)
    {
        return rules[static_cast<unsigned>(p)];
    }
};

namespace detail
{
/// The one global armed flag every seam checks first. Release-stored
/// by arm()/disarm(), acquire-loaded at the seams so a worker that
/// sees armed==true also sees the plan that was installed before it.
extern std::atomic<bool> faultArmed;
} // namespace detail

/**
 * The process-wide injector. Seams call FaultInjector::fire(point);
 * tests drive arm()/disarm() around a traffic window (never while
 * concurrent traffic is in flight — the plan itself is not meant to
 * be swapped under load). The HEROSIGN_FAULT_PLAN environment
 * variable, when set, arms the injector at the first seam hit.
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** The zero-cost disabled check (one relaxed load). */
    static bool armed()
    {
        return detail::faultArmed.load(std::memory_order_acquire);
    }

    /**
     * Count a hit on @p point and report whether the armed plan says
     * it fires. Always false when disarmed, without touching any
     * counter.
     */
    static bool fire(FaultPoint point)
    {
        return armed() && instance().fireArmed(point);
    }

    /** fire() wrapper that throws FaultInjected when it fires. */
    static void throwIfFires(FaultPoint point);

    /** Install @p plan and start injecting. Resets the counters. */
    void arm(const FaultPlan &plan);

    /** Stop injecting. Counters keep their values for inspection. */
    void disarm();

    /** The armed plan (meaningful only while armed). */
    const FaultPlan &plan() const { return plan_; }

    /** Seam hits on @p point since the last arm(). */
    uint64_t hits(FaultPoint point) const;

    /** Fires on @p point since the last arm(). */
    uint64_t fired(FaultPoint point) const;

    /**
     * Deterministic lane choice for a SimdLane corruption: mixes the
     * plan seed with the firing index so repeated fires walk the
     * lanes instead of always hitting lane 0.
     * @param limit number of eligible lanes (> 0)
     */
    unsigned laneFor(uint64_t fire_index, unsigned limit) const;

    /** Stall duration of the queue-stall rule, milliseconds. */
    uint64_t stallMs() const
    {
        return plan_.rule(FaultPoint::QueueStall).ms;
    }

  private:
    FaultInjector();
    bool fireArmed(FaultPoint point);

    FaultPlan plan_;
    std::atomic<uint64_t> hits_[faultPointCount];
    std::atomic<uint64_t> fired_[faultPointCount];
};

} // namespace herosign

#endif // HEROSIGN_COMMON_FAULT_HH
