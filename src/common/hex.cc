#include "common/hex.hh"

#include <stdexcept>

namespace herosign
{

namespace
{

int
nibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::string
hexEncode(ByteSpan data)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(data.size() * 2);
    for (uint8_t b : data) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

ByteVec
hexDecode(std::string_view hex)
{
    if (hex.size() % 2 != 0)
        throw std::invalid_argument("hexDecode: odd-length input");
    ByteVec out;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = nibble(hex[i]);
        int lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            throw std::invalid_argument("hexDecode: non-hex character");
        out.push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    return out;
}

} // namespace herosign
