/**
 * @file
 * Small byte-manipulation helpers shared across the library: byte
 * vectors/spans, big-endian integer packing (SPHINCS+ is specified in
 * terms of big-endian "toByte" conversions), and constant-time
 * comparison for secret material.
 */

#ifndef HEROSIGN_COMMON_BYTES_HH
#define HEROSIGN_COMMON_BYTES_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace herosign
{

using ByteVec = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;
using MutByteSpan = std::span<uint8_t>;

/** Store a 32-bit value big-endian into @p out. */
inline void
storeBe32(uint8_t *out, uint32_t v)
{
    out[0] = static_cast<uint8_t>(v >> 24);
    out[1] = static_cast<uint8_t>(v >> 16);
    out[2] = static_cast<uint8_t>(v >> 8);
    out[3] = static_cast<uint8_t>(v);
}

/** Store a 64-bit value big-endian into @p out. */
inline void
storeBe64(uint8_t *out, uint64_t v)
{
    storeBe32(out, static_cast<uint32_t>(v >> 32));
    storeBe32(out + 4, static_cast<uint32_t>(v));
}

/** Load a big-endian 32-bit value from @p in. */
inline uint32_t
loadBe32(const uint8_t *in)
{
    return (static_cast<uint32_t>(in[0]) << 24) |
           (static_cast<uint32_t>(in[1]) << 16) |
           (static_cast<uint32_t>(in[2]) << 8) |
           static_cast<uint32_t>(in[3]);
}

/** Load a big-endian 64-bit value from @p in. */
inline uint64_t
loadBe64(const uint8_t *in)
{
    return (static_cast<uint64_t>(loadBe32(in)) << 32) | loadBe32(in + 4);
}

/**
 * SPHINCS+ "toByte(x, y)": the y-byte big-endian encoding of x.
 * Writes exactly @p len bytes to @p out.
 */
inline void
toByte(uint8_t *out, uint64_t value, size_t len)
{
    for (size_t i = 0; i < len; ++i) {
        out[len - 1 - i] = static_cast<uint8_t>(value);
        value >>= 8;
    }
}

/**
 * Constant-time equality check, suitable for comparing secret-derived
 * values. Returns true iff the two buffers have equal length and
 * contents.
 */
inline bool
ctEqual(ByteSpan a, ByteSpan b)
{
    if (a.size() != b.size())
        return false;
    uint8_t acc = 0;
    for (size_t i = 0; i < a.size(); ++i)
        acc |= static_cast<uint8_t>(a[i] ^ b[i]);
    return acc == 0;
}

/** Append the contents of @p src to @p dst. */
inline void
append(ByteVec &dst, ByteSpan src)
{
    dst.insert(dst.end(), src.begin(), src.end());
}

/** Best-effort secure wipe (not optimized away). */
inline void
secureZero(MutByteSpan buf)
{
    volatile uint8_t *p = buf.data();
    for (size_t i = 0; i < buf.size(); ++i)
        p[i] = 0;
}

} // namespace herosign

#endif // HEROSIGN_COMMON_BYTES_HH
