/**
 * @file
 * Typed failure conditions of the fault-tolerant signing plane. Every
 * future the batch and service layers hand out completes with a value
 * or with one of these (or the exception the scheme itself raised) —
 * callers can switch on the failure kind instead of parsing what()
 * strings.
 */

#ifndef HEROSIGN_COMMON_ERRORS_HH
#define HEROSIGN_COMMON_ERRORS_HH

#include <stdexcept>
#include <string>

namespace herosign
{

/**
 * A produced signature failed the verify-after-sign guard twice (the
 * SIMD attempt and the forced-scalar re-sign). The corrupt signature
 * is never released; the job's future carries this instead.
 */
class SigningFault : public std::runtime_error
{
  public:
    explicit SigningFault(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * A queued request's deadline passed before a worker reached it. The
 * job is dropped without signing/verifying, its admission budget is
 * returned, and its future carries this.
 */
class DeadlineExceeded : public std::runtime_error
{
  public:
    explicit DeadlineExceeded(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * The service was close()d: new submissions are refused and work that
 * was still queued (not yet picked up by a worker) fails with this
 * instead of stranding its future.
 */
class ServiceShutdown : public std::runtime_error
{
  public:
    explicit ServiceShutdown(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

} // namespace herosign

#endif // HEROSIGN_COMMON_ERRORS_HH
