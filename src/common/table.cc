#include "common/table.hh"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace herosign
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size())
        throw std::invalid_argument("TextTable: row width mismatch");
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

size_t
TextTable::rowCount() const
{
    size_t n = 0;
    for (const auto &r : rows_)
        if (!r.empty())
            ++n;
    return n;
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_rule = [&](std::ostringstream &os) {
        for (size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &cells) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << "| " << cell << std::string(widths[c] - cell.size() + 1,
                                              ' ');
        }
        os << "|\n";
    };

    std::ostringstream os;
    emit_rule(os);
    emit_row(os, headers_);
    emit_rule(os);
    for (const auto &row : rows_) {
        if (row.empty())
            emit_rule(os);
        else
            emit_row(os, row);
    }
    emit_rule(os);
    return os.str();
}

std::string
TextTable::renderCsv() const
{
    auto esc = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += "\"\"";
            else
                out += ch;
        }
        out += '"';
        return out;
    };
    std::ostringstream os;
    for (size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "") << esc(headers_[c]);
    os << '\n';
    for (const auto &row : rows_) {
        if (row.empty())
            continue;
        for (size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << esc(row[c]);
        os << '\n';
    }
    return os.str();
}

std::string
fmtF(double v, int decimals)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(decimals);
    os << v;
    return os.str();
}

std::string
fmtX(double v, int decimals)
{
    return fmtF(v, decimals) + "x";
}

std::string
fmtGrouped(uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace herosign
