#include "common/random.hh"

#include <random>

namespace herosign
{

namespace
{

uint64_t
splitMix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

Rng
Rng::fromOs()
{
    std::random_device rd;
    uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    return Rng(seed);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

void
Rng::fill(MutByteSpan out)
{
    size_t i = 0;
    while (i + 8 <= out.size()) {
        uint64_t v = next();
        std::memcpy(out.data() + i, &v, 8);
        i += 8;
    }
    if (i < out.size()) {
        uint64_t v = next();
        std::memcpy(out.data() + i, &v, out.size() - i);
    }
}

ByteVec
Rng::bytes(size_t len)
{
    ByteVec out(len);
    fill(out);
    return out;
}

} // namespace herosign
