/**
 * @file
 * Short bounded measurement trials — the autotuner's cost oracle.
 *
 * A TrialRunner turns one KnobConfig into one TrialMeasurement by
 * actually running the workload for a small duration budget. The
 * production oracle is FabricTrialRunner: it stands up a fresh
 * SignService/VerifyService pair from the candidate config and drives
 * the same closed-loop mixed sign+verify traffic the
 * service_throughput bench reports, reusing the shared
 * bench-measurement helper (tune::measureFor) for the duration bound
 * and the telemetry LatencyHistogram for tail percentiles. The
 * abstract interface exists so search tests can substitute a recorded
 * or synthetic oracle and assert determinism without ever timing
 * anything.
 */

#ifndef HEROSIGN_TUNE_TRIAL_RUNNER_HH
#define HEROSIGN_TUNE_TRIAL_RUNNER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "service/key_store.hh"
#include "sphincs/sphincs.hh"
#include "tune/knob_space.hh"

namespace herosign::tune
{

/** What one trial of one candidate config measured. */
struct TrialMeasurement
{
    double opsPerSec = 0; ///< completed requests/s, both planes
    double p50Ms = 0;     ///< median request latency
    double p99Ms = 0;     ///< tail request latency
    uint64_t ops = 0;     ///< requests completed in the trial
    double wallMs = 0;    ///< trial wall time actually spent
};

/** The measurement oracle a Search drives. */
class TrialRunner
{
  public:
    virtual ~TrialRunner() = default;

    /** Run one bounded trial of @p cfg and report what it measured. */
    virtual TrialMeasurement measure(const KnobConfig &cfg) = 0;
};

/** Workload shape for FabricTrialRunner trials. */
struct FabricWorkload
{
    unsigned tenants = 4;      ///< distinct keys in the store
    unsigned producers = 2;    ///< closed-loop client threads
    double trialSeconds = 0.25; ///< timed duration per trial
    uint64_t seed = 0x7e57;    ///< message-material seed
};

/**
 * The real oracle: mixed sign+verify closed-loop traffic through a
 * SignService/VerifyService pair built from the candidate config
 * (shared cache, stats registry and admission controller — the same
 * fabric shape service_throughput benches). Key material and the
 * verify pool are generated once at construction; each measure()
 * builds a fresh fabric, warms every tenant's context untimed, then
 * times a closed loop per producer.
 */
class FabricTrialRunner : public TrialRunner
{
  public:
    FabricTrialRunner(const sphincs::Params &params,
                      const FabricWorkload &workload = {});
    ~FabricTrialRunner() override;

    TrialMeasurement measure(const KnobConfig &cfg) override;

    const FabricWorkload &workload() const { return workload_; }

  private:
    sphincs::Params params_;
    FabricWorkload workload_;
    sphincs::SphincsPlus scheme_;
    service::KeyStore store_;
    /// Per-tenant (message, valid signature) pairs for the verify
    /// direction; signed once at construction.
    std::vector<std::pair<ByteVec, ByteVec>> vpool_;
};

} // namespace herosign::tune

#endif // HEROSIGN_TUNE_TRIAL_RUNNER_HH
