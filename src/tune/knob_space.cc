#include "tune/knob_space.hh"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <thread>

#include "batch/lane_scheduler.hh"
#include "sphincs/thashx.hh"

namespace herosign::tune
{

namespace
{

/** Ascending power-of-two-ish ladder 1..cap (always includes 1). */
std::vector<unsigned>
workerLadder(unsigned cap)
{
    std::vector<unsigned> v;
    for (unsigned x = 1; x <= cap; x *= 2)
        v.push_back(x);
    if (v.back() != cap)
        v.push_back(cap);
    return v;
}

size_t
nearestIndex(const std::vector<unsigned> &values, unsigned want)
{
    size_t best = 0;
    for (size_t i = 1; i < values.size(); ++i) {
        const auto d = [&](size_t j) {
            return values[j] > want ? values[j] - want
                                    : want - values[j];
        };
        if (d(i) < d(best))
            best = i;
    }
    return best;
}

} // namespace

std::string
KnobConfig::label() const
{
    std::string s;
    s.append("w").append(std::to_string(signWorkers));
    s.append("/s").append(std::to_string(signShards));
    s.append("/c").append(std::to_string(signCoalesce));
    s.append(" vw").append(std::to_string(verifyWorkers));
    s.append("/vs").append(std::to_string(verifyShards));
    s.append("/vc").append(std::to_string(verifyCoalesce));
    s.append(" cap").append(std::to_string(cacheCapacity));
    return s;
}

service::ServiceConfig
KnobConfig::toServiceConfig() const
{
    service::ServiceConfig cfg;
    cfg.workers = signWorkers;
    cfg.shards = signShards;
    cfg.signCoalesce = signCoalesce;
    cfg.verifyWorkers = verifyWorkers;
    cfg.verifyShards = verifyShards;
    cfg.verifyCoalesce = verifyCoalesce;
    cfg.contextCacheCapacity = cacheCapacity;
    return cfg;
}

batch::BatchSignerConfig
KnobConfig::toBatchSignerConfig() const
{
    batch::BatchSignerConfig cfg;
    cfg.workers = signWorkers;
    cfg.shards = signShards;
    cfg.laneGroup = signCoalesce;
    return cfg;
}

KnobSpace::KnobSpace(std::vector<Knob> knobs) : knobs_(std::move(knobs))
{
}

KnobSpace
KnobSpace::standard(unsigned hw_threads, unsigned lane_width)
{
    unsigned hw = hw_threads ? hw_threads
                             : std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    unsigned w = lane_width ? lane_width : sphincs::hashLaneWidth();
    if (w == 0)
        w = 8;

    // Worker axes: up to 2x the hardware threads (mild
    // oversubscription can help when work stalls on futures), never
    // below the {1,2,4,8} ladder a small host still wants explored.
    const unsigned worker_cap = std::max(8u, 2 * hw);
    const auto workers = workerLadder(worker_cap);

    // Sign-side coalescing walks fractions of the lane width up to
    // the LaneScheduler group bound; the verify window additionally
    // explores multiples of the width, since mixed-tenant traffic
    // needs a deeper window to fill per-tenant lane groups.
    std::vector<unsigned> sign_co;
    for (unsigned c : {1u, w / 4, w / 2, w, 2 * w}) {
        c = std::min(std::max(c, 1u), batch::LaneScheduler::maxGroup);
        if (std::find(sign_co.begin(), sign_co.end(), c) ==
            sign_co.end())
            sign_co.push_back(c);
    }
    std::sort(sign_co.begin(), sign_co.end());
    std::vector<unsigned> verify_co;
    for (unsigned c : {w / 2, w, 2 * w, 4 * w, 8 * w}) {
        c = std::max(c, 1u);
        if (std::find(verify_co.begin(), verify_co.end(), c) ==
            verify_co.end())
            verify_co.push_back(c);
    }
    std::sort(verify_co.begin(), verify_co.end());

    std::vector<Knob> knobs;
    knobs.push_back({"sign_workers", workers});
    knobs.push_back({"sign_shards", workers});
    knobs.push_back({"sign_coalesce", sign_co});
    knobs.push_back({"verify_workers", workers});
    knobs.push_back({"verify_shards", workers});
    knobs.push_back({"verify_coalesce", verify_co});
    knobs.push_back({"cache_capacity", {1, 4, 16, 64, 256}});
    KnobSpace space(std::move(knobs));

    // The default point must denote the behavior of the hand-set
    // defaults, whose coalescing windows are 0 = auto; resolve them
    // to the effective widths the services use (sign: the lane
    // width, verify: 4x it) before snapping to the axes.
    KnobConfig def;
    def.signCoalesce = std::min(w, batch::LaneScheduler::maxGroup);
    def.verifyCoalesce = 4 * w;
    space.defaultPt_ = space.nearestPoint(def);
    return space;
}

size_t
KnobSpace::size() const
{
    size_t n = 1;
    for (const Knob &k : knobs_)
        n *= k.values.size();
    return n;
}

KnobConfig
KnobSpace::configAt(const Point &pt) const
{
    KnobConfig cfg;
    unsigned *fields[] = {&cfg.signWorkers,   &cfg.signShards,
                          &cfg.signCoalesce,  &cfg.verifyWorkers,
                          &cfg.verifyShards,  &cfg.verifyCoalesce,
                          &cfg.cacheCapacity};
    for (size_t i = 0; i < knobs_.size() && i < std::size(fields); ++i)
        *fields[i] = knobs_[i].values[pt[i]];
    return cfg;
}

KnobSpace::Point
KnobSpace::nearestPoint(const KnobConfig &cfg) const
{
    const unsigned fields[] = {cfg.signWorkers,   cfg.signShards,
                               cfg.signCoalesce,  cfg.verifyWorkers,
                               cfg.verifyShards,  cfg.verifyCoalesce,
                               cfg.cacheCapacity};
    Point pt(knobs_.size(), 0);
    for (size_t i = 0; i < knobs_.size() && i < std::size(fields); ++i)
        pt[i] = nearestIndex(knobs_[i].values, fields[i]);
    return pt;
}

KnobSpace::Point
KnobSpace::defaultPoint() const
{
    if (!defaultPt_.empty())
        return defaultPt_;
    return nearestPoint(KnobConfig{});
}

KnobSpace::Point
KnobSpace::randomPoint(Rng &rng) const
{
    Point pt(knobs_.size(), 0);
    for (size_t i = 0; i < knobs_.size(); ++i)
        pt[i] = static_cast<size_t>(
            rng.below(knobs_[i].values.size()));
    return pt;
}

KnobSpace::Point
KnobSpace::neighbor(const Point &pt, Rng &rng) const
{
    Point next = pt;
    // Pick a knob that can actually move; every standard axis has
    // >= 2 values, so this terminates immediately in practice.
    size_t dim = 0;
    do {
        dim = static_cast<size_t>(rng.below(knobs_.size()));
    } while (knobs_[dim].values.size() < 2);

    const size_t n = knobs_[dim].values.size();
    // 1-in-8 moves jump the knob anywhere (escape hatch); the rest
    // step one slot, reflecting at the ends.
    if (rng.below(8) == 0) {
        size_t j = static_cast<size_t>(rng.below(n - 1));
        next[dim] = j >= pt[dim] ? j + 1 : j; // never the same slot
    } else if (pt[dim] == 0) {
        next[dim] = 1;
    } else if (pt[dim] == n - 1) {
        next[dim] = n - 2;
    } else {
        next[dim] = rng.below(2) ? pt[dim] + 1 : pt[dim] - 1;
    }
    return next;
}

KnobConfig
KnobSpace::clamp(KnobConfig cfg)
{
    cfg.signWorkers = std::max(cfg.signWorkers, 1u);
    cfg.signShards = std::max(cfg.signShards, 1u);
    cfg.verifyWorkers = std::max(cfg.verifyWorkers, 1u);
    cfg.verifyShards = std::max(cfg.verifyShards, 1u);
    cfg.cacheCapacity = std::max(cfg.cacheCapacity, 1u);
    // 0 = auto stays; anything explicit caps at the lockstep bound,
    // mirroring BatchSigner's resolveLaneGroup.
    if (cfg.signCoalesce > batch::LaneScheduler::maxGroup)
        cfg.signCoalesce = batch::LaneScheduler::maxGroup;
    return cfg;
}

} // namespace herosign::tune
