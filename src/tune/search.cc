#include "tune/search.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/random.hh"

namespace herosign::tune
{

namespace
{

/** Uniform double in [0, 1) from the repo Rng (53 mantissa bits). */
double uniform01(Rng &rng)
{
    return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

struct CachedScore
{
    double score = 0;
    TrialMeasurement measurement;
};

/** The measurement the median probe produced (by ops/s). */
const TrialMeasurement &
medianMeasurement(std::vector<TrialMeasurement> &probes)
{
    std::sort(probes.begin(), probes.end(),
              [](const TrialMeasurement &a, const TrialMeasurement &b) {
                  return a.opsPerSec < b.opsPerSec;
              });
    return probes[probes.size() / 2];
}

} // namespace

SearchResult search(const KnobSpace &space, TrialRunner &runner,
                    const SearchOptions &opts)
{
    const unsigned median_of = std::max(1u, opts.medianOf);
    unsigned planned = opts.maxTrials;
    if (planned == 0) {
        // Size the plan to the budget assuming a full median-of-K per
        // candidate; pruning and cache hits only make it cheaper. The
        // plan is fixed here, before any trial runs — the walk never
        // consults a clock.
        const double per_candidate =
            std::max(1e-3, opts.trialSecondsHint) * median_of;
        planned = static_cast<unsigned>(
            std::max(4.0, opts.budgetSeconds / per_candidate));
    }

    Rng rng(opts.seed);
    SearchResult result;
    result.trialsPlanned = planned;

    std::map<KnobSpace::Point, CachedScore> cache;
    double best_score = -1;

    // Evaluate one point: median-of-K with the first-probe prune,
    // cached by point so revisits are free.
    const auto evaluate = [&](const KnobSpace::Point &pt,
                              bool allow_prune) -> CachedScore {
        if (auto it = cache.find(pt); it != cache.end())
            return it->second;
        const KnobConfig cfg = space.configAt(pt);
        std::vector<TrialMeasurement> probes;
        probes.push_back(runner.measure(cfg));
        ++result.measurements;
        const bool prune =
            allow_prune && best_score > 0 &&
            probes[0].opsPerSec < opts.pruneRatio * best_score;
        if (!prune) {
            for (unsigned k = 1; k < median_of; ++k) {
                probes.push_back(runner.measure(cfg));
                ++result.measurements;
            }
        }
        CachedScore cs;
        cs.measurement = medianMeasurement(probes);
        cs.score = cs.measurement.opsPerSec;

        TrialRecord rec;
        rec.index = static_cast<unsigned>(result.trajectory.size());
        rec.config = cfg;
        rec.measurement = cs.measurement;
        rec.score = cs.score;
        rec.probes = static_cast<unsigned>(probes.size());
        rec.pruned = prune;
        result.trajectory.push_back(rec);

        cache.emplace(pt, cs);
        return cs;
    };

    // Trial 0 is always the hand-set default config, measured in
    // full: the baseline is part of every trajectory, and the chosen
    // best can never score below the measured default.
    const KnobSpace::Point def = space.defaultPoint();
    const CachedScore def_cs = evaluate(def, /*allow_prune=*/false);
    best_score = def_cs.score;
    result.bestConfig = space.configAt(def);
    result.bestMeasurement = def_cs.measurement;
    result.bestScore = best_score;
    result.trajectory.back().improvedBest = true;

    // Warm start: the analytic prior's pick, measured in full.
    KnobSpace::Point cur = priorBestPoint(space, opts.prior);
    CachedScore cur_cs = evaluate(cur, /*allow_prune=*/false);
    double cur_score = cur_cs.score;
    result.trajectory.back().accepted = true;
    if (cur_score > best_score) {
        best_score = cur_score;
        result.bestConfig = space.configAt(cur);
        result.bestMeasurement = cur_cs.measurement;
        result.bestScore = best_score;
        result.trajectory.back().improvedBest = true;
    }

    // Annealed walk. `planned` counts *measured* candidates; cache
    // hits don't consume the plan, so cap total proposals at a small
    // multiple to stay bounded when the walk circles a known region.
    const double t0 = std::max(1e-6, opts.initialTemp);
    const double t1 =
        std::clamp(opts.finalTemp, 1e-6, opts.initialTemp);
    unsigned measured =
        static_cast<unsigned>(result.trajectory.size());
    const unsigned max_proposals = planned * 4 + 16;
    for (unsigned prop = 0;
         measured < planned && prop < max_proposals; ++prop) {
        const double frac =
            planned > 1
                ? static_cast<double>(measured) / (planned - 1)
                : 1.0;
        const double temp = t0 * std::pow(t1 / t0, frac);

        const KnobSpace::Point cand = space.neighbor(cur, rng);
        const bool fresh = cache.find(cand) == cache.end();
        const CachedScore cand_cs = evaluate(cand, true);
        if (fresh)
            ++measured;

        const double rel =
            (cand_cs.score - cur_score) / std::max(1e-9, cur_score);
        const bool accept =
            rel >= 0 || uniform01(rng) < std::exp(rel / temp);
        if (fresh)
            result.trajectory.back().accepted = accept;
        if (accept) {
            cur = cand;
            cur_score = cand_cs.score;
        }
        if (cand_cs.score > best_score) {
            best_score = cand_cs.score;
            result.bestConfig = space.configAt(cand);
            result.bestMeasurement = cand_cs.measurement;
            result.bestScore = best_score;
            if (fresh)
                result.trajectory.back().improvedBest = true;
        }
    }
    return result;
}

} // namespace herosign::tune
