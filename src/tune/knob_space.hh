/**
 * @file
 * The tunable configuration space of the CPU serving stack.
 *
 * HERO-Sign's Algorithm 1 searches (T_set, F) under GPU shared-memory
 * and thread constraints; the CPU analogue is the knob set that
 * actually carries production traffic: worker/shard counts on both
 * serving planes, the cross-signature coalescing windows and the
 * warm-context cache capacity. A KnobSpace enumerates discrete
 * per-knob candidate values derived from the hardware
 * (hw_concurrency bounds the worker axes, the dispatched
 * hashLaneWidth() anchors the coalescing axes), and a KnobConfig is
 * one point of the space, mappable onto ServiceConfig and
 * BatchSignerConfig.
 */

#ifndef HEROSIGN_TUNE_KNOB_SPACE_HH
#define HEROSIGN_TUNE_KNOB_SPACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "batch/batch_signer.hh"
#include "common/random.hh"
#include "service/admission.hh"

namespace herosign::tune
{

/**
 * One candidate configuration of the serving stack. Defaults equal
 * the hand-set ServiceConfig/BatchSignerConfig defaults, so a
 * default-constructed KnobConfig IS the untuned baseline.
 */
struct KnobConfig
{
    unsigned signWorkers = 4;   ///< SignService / BatchSigner workers
    unsigned signShards = 4;    ///< sign queue shards
    unsigned signCoalesce = 0;  ///< lane group; 0 = auto (lane width)
    unsigned verifyWorkers = 2; ///< VerifyService workers
    unsigned verifyShards = 2;  ///< verify queue shards
    unsigned verifyCoalesce = 0; ///< verify window; 0 = auto (4x width)
    unsigned cacheCapacity = 64; ///< warm-context cache entries

    bool operator==(const KnobConfig &) const = default;

    /** Compact one-line label, e.g. "w1/s1/c16 vw1/vs1/vc64 cap64". */
    std::string label() const;

    /** Map onto the serving-layer construction knobs. */
    service::ServiceConfig toServiceConfig() const;

    /** Map onto the batch-signer construction knobs. */
    batch::BatchSignerConfig toBatchSignerConfig() const;
};

/** One tunable axis: a name and its ordered candidate values. */
struct Knob
{
    std::string name;
    std::vector<unsigned> values;
};

/**
 * The discrete configuration space. A Point holds one value index
 * per knob; neighbor() implements the annealing move (step one knob
 * one slot, occasionally jump one knob anywhere), with all
 * randomness drawn from the caller's seeded Rng so walks replay
 * exactly.
 */
class KnobSpace
{
  public:
    using Point = std::vector<size_t>;

    /**
     * The standard serving-stack space with hardware-derived bounds.
     * @param hw_threads worker-axis bound; 0 = hardware_concurrency()
     * @param lane_width coalescing-axis anchor; 0 = hashLaneWidth()
     */
    static KnobSpace standard(unsigned hw_threads = 0,
                              unsigned lane_width = 0);

    const std::vector<Knob> &knobs() const { return knobs_; }
    size_t dims() const { return knobs_.size(); }

    /** Number of distinct configurations (product of axis sizes). */
    size_t size() const;

    /** The KnobConfig a point denotes. */
    KnobConfig configAt(const Point &pt) const;

    /**
     * The point denoting the hand-set defaults. 0 = auto is not an
     * axis value, so the auto coalescing windows are resolved to
     * their effective widths (sign: the lane width; verify: 4x) —
     * the configuration this point denotes behaves identically to
     * ServiceConfig{}.
     */
    Point defaultPoint() const;

    /** The point whose config is nearest @p cfg (per-knob nearest). */
    Point nearestPoint(const KnobConfig &cfg) const;

    /** Uniformly random point (all randomness from @p rng). */
    Point randomPoint(Rng &rng) const;

    /**
     * One annealing move from @p pt: pick a knob with more than one
     * value and either step its index by +-1 (reflecting at the
     * ends) or, with small probability, jump it to a uniformly
     * random slot — the escape hatch out of local optima.
     */
    Point neighbor(const Point &pt, Rng &rng) const;

    /**
     * Clamp a config exactly the way the consuming constructors do,
     * so values loaded from a profile and values set directly are
     * indistinguishable after construction: worker/shard counts and
     * the cache capacity floor at 1; the sign-side coalescing group
     * caps at the LaneScheduler bound (0 stays 0 = auto).
     */
    static KnobConfig clamp(KnobConfig cfg);

  private:
    explicit KnobSpace(std::vector<Knob> knobs);

    std::vector<Knob> knobs_;
    Point defaultPt_;
};

} // namespace herosign::tune

#endif // HEROSIGN_TUNE_KNOB_SPACE_HH
