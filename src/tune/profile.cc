#include "tune/profile.hh"

#include <cctype>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/hex.hh"
#include "hash/sha256.hh"
#include "sphincs/thashx.hh"

namespace herosign::tune
{

namespace
{

/**
 * Minimal recursive-descent JSON reader, just enough for the flat
 * profile schema: objects, strings, unsigned/float numbers, and
 * generic value skipping for unknown keys. Every syntax error throws
 * ProfileError{Parse} with the byte offset, so a corrupt profile is
 * loudly rejected instead of partially applied.
 */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : s_(text) {}

    void
    expect(char c)
    {
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    tryConsume(char c)
    {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != '"')
            fail("expected string");
        ++pos_;
        std::string out;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    fail("dangling escape");
                char e = s_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'u':
                    // Profiles only ever contain ASCII; decode the
                    // low byte and reject anything wider.
                    if (pos_ + 4 > s_.size())
                        fail("truncated \\u escape");
                    out += static_cast<char>(
                        std::stoi(s_.substr(pos_, 4), nullptr, 16));
                    pos_ += 4;
                    break;
                default: fail("unsupported escape");
                }
            } else {
                out += c;
            }
        }
        if (pos_ >= s_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return out;
    }

    double
    parseNumber()
    {
        skipWs();
        const size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected number");
        try {
            return std::stod(s_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail("malformed number");
        }
        return 0; // unreachable
    }

    /** Skip any one JSON value (for unknown keys). */
    void
    skipValue()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("expected value");
        const char c = s_[pos_];
        if (c == '"') {
            parseString();
        } else if (c == '{') {
            forEachKey([this](const std::string &) { skipValue(); });
        } else if (c == '[') {
            ++pos_;
            if (tryConsume(']'))
                return;
            do {
                skipValue();
            } while (tryConsume(','));
            expect(']');
        } else if (s_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
        } else if (s_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
        } else {
            parseNumber();
        }
    }

    /** Parse one object, invoking @p on_key for every key. */
    template <typename Fn>
    void
    forEachKey(Fn &&on_key)
    {
        expect('{');
        if (tryConsume('}'))
            return;
        do {
            std::string key = parseString();
            expect(':');
            on_key(key);
        } while (tryConsume(','));
        expect('}');
    }

    void
    checkEnd()
    {
        skipWs();
        if (pos_ != s_.size())
            fail("trailing garbage");
    }

    [[noreturn]] void
    fail(const std::string &why)
    {
        throw ProfileError(ProfileError::Kind::Parse,
                           "profile JSON: " + why + " at byte " +
                               std::to_string(pos_));
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

std::string
fmtDouble(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << std::fixed << v;
    return os.str();
}

unsigned
asUnsigned(double v, const char *field)
{
    if (v < 0 || v != static_cast<double>(static_cast<uint64_t>(v)))
        throw ProfileError(ProfileError::Kind::Parse,
                           std::string("profile JSON: field '") +
                               field + "' is not a non-negative " +
                               "integer");
    return static_cast<unsigned>(v);
}

std::mutex g_profileHashM;
std::string g_profileHash;

} // namespace

HostFingerprint
HostFingerprint::current(const std::string &param_set)
{
    HostFingerprint fp;
    fp.cores = std::thread::hardware_concurrency();
    fp.paramSet = param_set;
    switch (laneDispatch().backend) {
    case LaneBackend::Avx512: fp.dispatch = "avx512"; break;
    case LaneBackend::Avx2: fp.dispatch = "avx2"; break;
    case LaneBackend::Scalar: fp.dispatch = "portable"; break;
    }
    fp.cpuModel = "unknown";
#ifdef __linux__
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        const auto pos = line.find("model name");
        if (pos != std::string::npos) {
            const auto colon = line.find(':');
            if (colon != std::string::npos) {
                size_t b = colon + 1;
                while (b < line.size() && line[b] == ' ')
                    ++b;
                fp.cpuModel = line.substr(b);
            }
            break;
        }
    }
#endif
    return fp;
}

std::string
HostFingerprint::describeMismatch(const HostFingerprint &other) const
{
    std::string why;
    auto add = [&](const char *what, const std::string &a,
                   const std::string &b) {
        if (a != b) {
            if (!why.empty())
                why += "; ";
            why += std::string(what) + " '" + a + "' vs '" + b + "'";
        }
    };
    add("cpu", cpuModel, other.cpuModel);
    add("cores", std::to_string(cores), std::to_string(other.cores));
    add("dispatch", dispatch, other.dispatch);
    add("param set", paramSet, other.paramSet);
    return why;
}

std::string
Profile::toJson() const
{
    std::string s;
    s += "{\n";
    s += "  \"version\": " + std::to_string(kVersion) + ",\n";
    s += "  \"fingerprint\": {\n";
    s += "    \"cpu\": " + jsonQuote(fingerprint.cpuModel) + ",\n";
    s += "    \"cores\": " + std::to_string(fingerprint.cores) + ",\n";
    s += "    \"dispatch\": " + jsonQuote(fingerprint.dispatch) +
         ",\n";
    s += "    \"param_set\": " + jsonQuote(fingerprint.paramSet) +
         "\n  },\n";
    s += "  \"config\": {\n";
    s += "    \"sign_workers\": " + std::to_string(config.signWorkers) +
         ",\n";
    s += "    \"sign_shards\": " + std::to_string(config.signShards) +
         ",\n";
    s += "    \"sign_coalesce\": " +
         std::to_string(config.signCoalesce) + ",\n";
    s += "    \"verify_workers\": " +
         std::to_string(config.verifyWorkers) + ",\n";
    s += "    \"verify_shards\": " +
         std::to_string(config.verifyShards) + ",\n";
    s += "    \"verify_coalesce\": " +
         std::to_string(config.verifyCoalesce) + ",\n";
    s += "    \"cache_capacity\": " +
         std::to_string(config.cacheCapacity) + "\n  },\n";
    s += "  \"measured\": {\n";
    s += "    \"tuned_ops_per_sec\": " + fmtDouble(tunedOpsPerSec) +
         ",\n";
    s += "    \"baseline_ops_per_sec\": " +
         fmtDouble(baselineOpsPerSec) + ",\n";
    s += "    \"tuned_p99_ms\": " + fmtDouble(tunedP99Ms) + "\n  },\n";
    s += "  \"seed\": " + std::to_string(seed) + ",\n";
    s += "  \"trials\": " + std::to_string(trials) + "\n";
    s += "}\n";
    return s;
}

Profile
Profile::fromJson(const std::string &text)
{
    JsonReader r(text);
    Profile p;
    bool saw_version = false, saw_fingerprint = false,
         saw_config = false;
    r.forEachKey([&](const std::string &key) {
        if (key == "version") {
            const unsigned v = asUnsigned(r.parseNumber(), "version");
            saw_version = true;
            if (v != kVersion)
                throw ProfileError(
                    ProfileError::Kind::Version,
                    "profile version " + std::to_string(v) +
                        " != supported " + std::to_string(kVersion));
        } else if (key == "fingerprint") {
            saw_fingerprint = true;
            r.forEachKey([&](const std::string &k) {
                if (k == "cpu")
                    p.fingerprint.cpuModel = r.parseString();
                else if (k == "cores")
                    p.fingerprint.cores =
                        asUnsigned(r.parseNumber(), "cores");
                else if (k == "dispatch")
                    p.fingerprint.dispatch = r.parseString();
                else if (k == "param_set")
                    p.fingerprint.paramSet = r.parseString();
                else
                    r.skipValue();
            });
        } else if (key == "config") {
            saw_config = true;
            r.forEachKey([&](const std::string &k) {
                auto u = [&](const char *f) {
                    return asUnsigned(r.parseNumber(), f);
                };
                if (k == "sign_workers")
                    p.config.signWorkers = u(k.c_str());
                else if (k == "sign_shards")
                    p.config.signShards = u(k.c_str());
                else if (k == "sign_coalesce")
                    p.config.signCoalesce = u(k.c_str());
                else if (k == "verify_workers")
                    p.config.verifyWorkers = u(k.c_str());
                else if (k == "verify_shards")
                    p.config.verifyShards = u(k.c_str());
                else if (k == "verify_coalesce")
                    p.config.verifyCoalesce = u(k.c_str());
                else if (k == "cache_capacity")
                    p.config.cacheCapacity = u(k.c_str());
                else
                    r.skipValue();
            });
        } else if (key == "measured") {
            r.forEachKey([&](const std::string &k) {
                if (k == "tuned_ops_per_sec")
                    p.tunedOpsPerSec = r.parseNumber();
                else if (k == "baseline_ops_per_sec")
                    p.baselineOpsPerSec = r.parseNumber();
                else if (k == "tuned_p99_ms")
                    p.tunedP99Ms = r.parseNumber();
                else
                    r.skipValue();
            });
        } else if (key == "seed") {
            p.seed = static_cast<uint64_t>(r.parseNumber());
        } else if (key == "trials") {
            p.trials = asUnsigned(r.parseNumber(), "trials");
        } else {
            r.skipValue();
        }
    });
    r.checkEnd();
    if (!saw_version)
        throw ProfileError(ProfileError::Kind::Parse,
                           "profile JSON: missing 'version'");
    if (!saw_fingerprint)
        throw ProfileError(ProfileError::Kind::Parse,
                           "profile JSON: missing 'fingerprint'");
    if (!saw_config)
        throw ProfileError(ProfileError::Kind::Parse,
                           "profile JSON: missing 'config'");
    return p;
}

std::string
Profile::hash() const
{
    const std::string doc = toJson();
    const auto d = Sha256::digest(
        ByteSpan(reinterpret_cast<const uint8_t *>(doc.data()),
                 doc.size()));
    return hexEncode(ByteSpan(d.data(), 8));
}

void
saveProfile(const std::string &path, const Profile &profile)
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        throw ProfileError(ProfileError::Kind::Io,
                           "cannot write profile '" + path + "'");
    f << profile.toJson();
    f.flush();
    if (!f)
        throw ProfileError(ProfileError::Kind::Io,
                           "short write to profile '" + path + "'");
}

Profile
loadProfile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        throw ProfileError(ProfileError::Kind::Io,
                           "cannot read profile '" + path + "'");
    std::ostringstream buf;
    buf << f.rdbuf();
    return Profile::fromJson(buf.str());
}

Profile
loadProfileMatching(const std::string &path,
                    const HostFingerprint &expect)
{
    Profile p = loadProfile(path);
    if (!(p.fingerprint == expect))
        throw ProfileError(
            ProfileError::Kind::Fingerprint,
            "profile '" + path + "' is stale for this host: " +
                p.fingerprint.describeMismatch(expect));
    return p;
}

void
setActiveProfileHash(const std::string &hash)
{
    std::lock_guard<std::mutex> lk(g_profileHashM);
    g_profileHash = hash;
}

std::string
activeProfileHash()
{
    std::lock_guard<std::mutex> lk(g_profileHashM);
    return g_profileHash;
}

} // namespace herosign::tune

// --- fromProfile: the recommended construction path -----------------
//
// Defined here (not in the batch/service TUs) so the config headers
// only need a forward declaration of tune::Profile; the library links
// as one unit either way. Profile knobs pass through KnobSpace::clamp
// — the same floors/caps the constructors apply — so a value loaded
// from a profile and the same value set directly produce identical
// effective configurations; explicit user overrides then win
// unconditionally.

namespace herosign::service
{

ServiceConfig
ServiceConfig::fromProfile(const tune::Profile &p)
{
    return fromProfile(p, tune::ServiceKnobOverrides{});
}

ServiceConfig
ServiceConfig::fromProfile(const tune::Profile &p,
                           const tune::ServiceKnobOverrides &user)
{
    const tune::KnobConfig k = tune::KnobSpace::clamp(p.config);
    ServiceConfig cfg;
    cfg.workers = user.workers.value_or(k.signWorkers);
    cfg.shards = user.shards.value_or(k.signShards);
    cfg.signCoalesce = user.signCoalesce.value_or(k.signCoalesce);
    cfg.verifyWorkers = user.verifyWorkers.value_or(k.verifyWorkers);
    cfg.verifyShards = user.verifyShards.value_or(k.verifyShards);
    cfg.verifyCoalesce =
        user.verifyCoalesce.value_or(k.verifyCoalesce);
    cfg.contextCacheCapacity =
        user.contextCacheCapacity.value_or(k.cacheCapacity);
    return cfg;
}

} // namespace herosign::service

namespace herosign::batch
{

BatchSignerConfig
BatchSignerConfig::fromProfile(const tune::Profile &p)
{
    return fromProfile(p, tune::BatchKnobOverrides{});
}

BatchSignerConfig
BatchSignerConfig::fromProfile(const tune::Profile &p,
                               const tune::BatchKnobOverrides &user)
{
    const tune::KnobConfig k = tune::KnobSpace::clamp(p.config);
    BatchSignerConfig cfg;
    cfg.workers = user.workers.value_or(k.signWorkers);
    cfg.shards = user.shards.value_or(k.signShards);
    cfg.laneGroup = user.laneGroup.value_or(k.signCoalesce);
    return cfg;
}

} // namespace herosign::batch
