/**
 * @file
 * Persisted per-host tuning profiles.
 *
 * A Profile is the autotuner's output: the winning KnobConfig plus
 * the fingerprint of the host it was measured on (cpu model, core
 * count, SIMD dispatch tier, parameter set) and the measured
 * tuned/baseline rates. Profiles round-trip through a small JSON
 * document; loading validates the format and (optionally) the
 * fingerprint, and every failure is a typed ProfileError — a
 * malformed or stale profile is rejected, never silently applied.
 *
 * ServiceConfig::fromProfile() / BatchSignerConfig::fromProfile()
 * (declared on the config structs, defined here) are the recommended
 * construction path: profile knobs are clamped exactly like directly
 * set ones, and explicit user overrides always win.
 */

#ifndef HEROSIGN_TUNE_PROFILE_HH
#define HEROSIGN_TUNE_PROFILE_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "tune/knob_space.hh"

namespace herosign::tune
{

/** Thrown for every profile load/validation failure. */
class ProfileError : public std::runtime_error
{
  public:
    enum class Kind {
        Io,          ///< file unreadable/unwritable
        Parse,       ///< malformed JSON or missing required field
        Version,     ///< produced by an incompatible format version
        Fingerprint, ///< recorded on a different host/config
    };

    ProfileError(Kind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {
    }

    Kind kind() const { return kind_; }

  private:
    Kind kind_;
};

/**
 * What made the measurements host-specific. Two profiles are
 * interchangeable only when every field matches: a different CPU,
 * core count or SIMD dispatch tier shifts every knob's payoff, and a
 * different parameter set changes the work shape entirely.
 */
struct HostFingerprint
{
    std::string cpuModel; ///< /proc/cpuinfo "model name" (or unknown)
    unsigned cores = 0;   ///< std::thread::hardware_concurrency()
    std::string dispatch; ///< "avx512" / "avx2" / "portable"
    std::string paramSet; ///< Params::name the tuning ran against

    bool operator==(const HostFingerprint &) const = default;

    /** The current host's fingerprint for @p param_set. */
    static HostFingerprint current(const std::string &param_set);

    /** Human-readable mismatch description ("" when equal). */
    std::string describeMismatch(const HostFingerprint &other) const;
};

/** The autotuner's persisted result. */
struct Profile
{
    /// Bumped when the JSON schema changes incompatibly.
    static constexpr unsigned kVersion = 1;

    HostFingerprint fingerprint;
    KnobConfig config;
    double tunedOpsPerSec = 0;    ///< measured with `config`
    double baselineOpsPerSec = 0; ///< measured with the defaults
    double tunedP99Ms = 0;        ///< tail latency with `config`
    uint64_t seed = 0;            ///< search seed (replayability)
    unsigned trials = 0;          ///< measured trials spent

    /** Serialize as a stable, human-readable JSON document. */
    std::string toJson() const;

    /**
     * Parse a profile document.
     * @throws ProfileError{Parse} on malformed JSON or missing
     *         fields, ProfileError{Version} on a schema mismatch
     */
    static Profile fromJson(const std::string &text);

    /** Short content hash of the serialized profile (sha256/8B hex). */
    std::string hash() const;
};

/** Write @p profile to @p path. @throws ProfileError{Io} */
void saveProfile(const std::string &path, const Profile &profile);

/** Load @p path without fingerprint checks. @throws ProfileError */
Profile loadProfile(const std::string &path);

/**
 * Load @p path and require its fingerprint to match @p expect —
 * the guard that keeps a profile recorded on one host (or SIMD
 * tier, or parameter set) from being applied on another.
 * @throws ProfileError{Fingerprint} on any mismatch
 */
Profile loadProfileMatching(const std::string &path,
                            const HostFingerprint &expect);

/**
 * Explicit user overrides for the serving-layer knobs; a set field
 * always beats the profile value in fromProfile().
 */
struct ServiceKnobOverrides
{
    std::optional<unsigned> workers;
    std::optional<unsigned> shards;
    std::optional<unsigned> signCoalesce;
    std::optional<unsigned> verifyWorkers;
    std::optional<unsigned> verifyShards;
    std::optional<unsigned> verifyCoalesce;
    std::optional<size_t> contextCacheCapacity;
};

/** Explicit user overrides for the batch-signer knobs. */
struct BatchKnobOverrides
{
    std::optional<unsigned> workers;
    std::optional<unsigned> shards;
    std::optional<unsigned> laneGroup;
};

/**
 * Record the profile applied to this process (its content hash is
 * embedded in bench snapshot fingerprints); pass "" to clear.
 */
void setActiveProfileHash(const std::string &hash);

/** The hash recorded by setActiveProfileHash ("" when none). */
std::string activeProfileHash();

} // namespace herosign::tune

#endif // HEROSIGN_TUNE_PROFILE_HH
