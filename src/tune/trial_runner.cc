#include "tune/trial_runner.hh"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/random.hh"
#include "service/sign_service.hh"
#include "service/verify_service.hh"
#include "telemetry/histogram.hh"
#include "tune/measure.hh"

namespace herosign::tune
{

namespace
{

std::string tenantId(unsigned t)
{
    return std::string("tenant-").append(std::to_string(t));
}

uint64_t nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

FabricTrialRunner::FabricTrialRunner(const sphincs::Params &params,
                                     const FabricWorkload &workload)
    : params_(params), workload_(workload), scheme_(params)
{
    workload_.tenants = std::max(1u, workload_.tenants);
    workload_.producers = std::max(1u, workload_.producers);
    workload_.trialSeconds = std::max(0.01, workload_.trialSeconds);

    Rng rng(workload_.seed);
    vpool_.reserve(workload_.tenants);
    for (unsigned t = 0; t < workload_.tenants; ++t) {
        auto kp = scheme_.keygenFromSeed(rng.bytes(3 * params_.n));
        store_.addKey(tenantId(t), kp);
        ByteVec m = rng.bytes(32);
        ByteVec s = scheme_.sign(m, kp.sk);
        vpool_.emplace_back(std::move(m), std::move(s));
    }
}

FabricTrialRunner::~FabricTrialRunner() = default;

TrialMeasurement FabricTrialRunner::measure(const KnobConfig &cfg)
{
    const service::ServiceConfig scfg = cfg.toServiceConfig();
    service::SignService ssvc(store_, scfg);
    service::VerifyService vsvc(store_, scfg, ssvc.contextCache(),
                                ssvc.statsRegistry(),
                                ssvc.admission());

    // Untimed warmup: touch every tenant on both planes so the trial
    // never charges the candidate the one-time context builds — the
    // cache-capacity knob is measured on steady-state evictions, not
    // cold fills.
    Rng wrng(workload_.seed ^ 0x9e3779b97f4a7c15ull);
    for (unsigned t = 0; t < workload_.tenants; ++t) {
        ssvc.submitSign(tenantId(t), wrng.bytes(32)).get();
        vsvc.submitVerify(tenantId(t), vpool_[t].first,
                          vpool_[t].second)
            .get();
    }

    // Timed closed loop: each producer keeps one request in flight,
    // alternating sign and verify across rotating tenants (the shape
    // the service_throughput mixed-fabric section reports).
    telemetry::LatencyHistogram lat(workload_.producers);
    std::vector<MeasureResult> per(workload_.producers);
    std::vector<std::thread> threads;
    threads.reserve(workload_.producers);
    for (unsigned t = 0; t < workload_.producers; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(workload_.seed + 0xfab0 + t);
            uint64_t i = 0;
            per[t] = measureFor(
                workload_.trialSeconds, /*warmup_iters=*/0, [&] {
                    const unsigned tenant =
                        static_cast<unsigned>((t + i) %
                                              workload_.tenants);
                    const std::string id = tenantId(tenant);
                    const uint64_t s0 = nowNs();
                    if (i % 2 == 0)
                        ssvc.submitSign(id, rng.bytes(32)).get();
                    else
                        vsvc.submitVerify(id, vpool_[tenant].first,
                                          vpool_[tenant].second)
                            .get();
                    lat.record(nowNs() - s0);
                    ++i;
                });
        });
    }
    for (auto &th : threads)
        th.join();
    ssvc.drain();
    vsvc.drain();

    TrialMeasurement m;
    double max_wall_us = 0;
    for (const auto &r : per) {
        m.ops += r.iters;
        max_wall_us = std::max(max_wall_us, r.wallUs);
    }
    m.wallMs = max_wall_us / 1000.0;
    m.opsPerSec =
        max_wall_us > 0 ? m.ops * 1e6 / max_wall_us : 0.0;
    const auto snap = lat.snapshot();
    m.p50Ms = snap.percentile(0.50) / 1e6;
    m.p99Ms = snap.percentile(0.99) / 1e6;
    return m;
}

} // namespace herosign::tune
