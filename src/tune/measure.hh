/**
 * @file
 * The one duration-bounded measurement loop shared by the autotuner's
 * TrialRunner and the bench binaries (via bench/bench_util.hh), so a
 * tuner trial and a bench row mean the same thing: warm up, then run
 * the operation in a closed loop until the time budget elapses and
 * report iterations against the measured wall clock.
 */

#ifndef HEROSIGN_TUNE_MEASURE_HH
#define HEROSIGN_TUNE_MEASURE_HH

#include <chrono>
#include <cstdint>
#include <utility>

namespace herosign::tune
{

/** Outcome of one measureFor() run. */
struct MeasureResult
{
    uint64_t iters = 0; ///< operations completed inside the window
    double wallUs = 0;  ///< measured wall clock of those operations

    /** Operations per second (0 when nothing ran). */
    double
    opsPerSec() const
    {
        return wallUs > 0 ? iters * 1e6 / wallUs : 0.0;
    }
};

/**
 * Run @p fn in a closed loop for (at least) @p seconds of wall clock,
 * after @p warmup_iters untimed warmup calls. At least one timed
 * iteration always runs, so rates are never divided by zero and a
 * single slow operation still yields its true cost.
 */
template <typename Fn>
MeasureResult
measureFor(double seconds, unsigned warmup_iters, Fn &&fn)
{
    using clock = std::chrono::steady_clock;
    for (unsigned i = 0; i < warmup_iters; ++i)
        fn();
    MeasureResult r;
    const auto t0 = clock::now();
    const auto deadline =
        t0 + std::chrono::duration_cast<clock::duration>(
                 std::chrono::duration<double>(seconds));
    do {
        fn();
        ++r.iters;
    } while (clock::now() < deadline);
    r.wallUs = std::chrono::duration<double, std::micro>(clock::now() -
                                                         t0)
                   .count();
    return r;
}

} // namespace herosign::tune

#endif // HEROSIGN_TUNE_MEASURE_HH
