#include "tune/prior.hh"

#include <algorithm>
#include <cmath>
#include <thread>

#include "sphincs/thashx.hh"

namespace herosign::tune
{

namespace
{

unsigned resolveThreads(unsigned hw)
{
    if (hw != 0)
        return hw;
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

unsigned resolveLanes(unsigned w)
{
    if (w != 0)
        return w;
    const unsigned n = sphincs::hashLaneWidth();
    return n == 0 ? 1 : n;
}

/// Fraction of SIMD lanes a coalescing window of @p c fills when the
/// dispatched width is @p width. 0 means "auto", which the services
/// resolve to a full window.
double laneFill(unsigned c, unsigned width)
{
    if (c == 0)
        return 1.0;
    return static_cast<double>(std::min(c, width)) / width;
}

/// How far @p shards strays from @p workers, in doublings. Matching
/// counts give every consumer a home shard; far fewer shards funnel
/// producers through shared locks, far more send consumers on long
/// work-stealing scans.
double shardMismatch(unsigned workers, unsigned shards)
{
    const double w = std::max(1u, workers);
    const double s = std::max(1u, shards);
    return std::fabs(std::log2(s / w));
}

} // namespace

double priorScore(const KnobConfig &cfg, const PriorModel &model)
{
    const unsigned hw = resolveThreads(model.hwThreads);
    const unsigned width = resolveLanes(model.laneWidth);
    const unsigned tenants = std::max(1u, model.tenants);
    const double signShare = std::clamp(model.signShare, 0.0, 1.0);

    // Thread-utilization analogue: lane fill on both planes. The
    // verify plane groups per tenant, so its effective window is the
    // per-tenant share of the coalescing budget (0 = auto = 4*width,
    // always full).
    const double signFill = laneFill(cfg.signCoalesce, width);
    const double verifyWindow =
        cfg.verifyCoalesce == 0
            ? width
            : std::max(1u, cfg.verifyCoalesce / tenants);
    const double verifyFill =
        std::min<double>(verifyWindow, width) / width;
    double score = signShare * signFill + (1.0 - signShare) * verifyFill;

    // Sync-point analogue #1: oversubscription. Worker threads past
    // the physical cores buy context switches, not overlap. One extra
    // thread is nearly free (producers block a lot); the penalty grows
    // linearly after that.
    const unsigned threads = cfg.signWorkers + cfg.verifyWorkers;
    if (threads > hw + 1)
        score -= 0.04 * (threads - hw - 1);
    // Undersubscription wastes cores outright.
    if (threads < hw)
        score -= 0.06 * (hw - threads);

    // Sync-point analogue #2: shard/worker mismatch on both queues.
    score -= 0.03 * shardMismatch(cfg.signWorkers, cfg.signShards);
    score -= 0.03 * shardMismatch(cfg.verifyWorkers, cfg.verifyShards);

    // Residency analogue: a cache below the tenant working set
    // rebuilds per-key contexts on the hot path; beyond it, capacity
    // is free but worthless.
    if (cfg.cacheCapacity < tenants)
        score -= 0.10 * (tenants - cfg.cacheCapacity);

    return score;
}

KnobSpace::Point priorBestPoint(const KnobSpace &space,
                                const PriorModel &model)
{
    KnobSpace::Point pt(space.dims(), 0);
    KnobSpace::Point best = pt;
    double best_score = priorScore(space.configAt(pt), model);

    // Odometer enumeration of the full space (a few thousand points;
    // priorScore is arithmetic only). First-wins on ties keeps the
    // result deterministic across runs and platforms.
    while (true) {
        size_t d = 0;
        for (; d < space.dims(); ++d) {
            if (++pt[d] < space.knobs()[d].values.size())
                break;
            pt[d] = 0;
        }
        if (d == space.dims())
            break;
        const double s = priorScore(space.configAt(pt), model);
        if (s > best_score) {
            best_score = s;
            best = pt;
        }
    }
    return best;
}

} // namespace herosign::tune
