/**
 * @file
 * The measured knob search: simulated annealing over a KnobSpace,
 * seeded by the analytic prior, scored by a TrialRunner.
 *
 * The search mirrors the AKG-style tuning loop (configuration space +
 * cost-model warm start + annealed random walk over measured trials),
 * adapted to serving throughput: the score of a candidate is the
 * median closed-loop ops/s of K short trials, with an early prune —
 * a first probe far below the incumbent best skips the remaining
 * probes, so hopeless corners of the space cost one trial, not K.
 *
 * Everything random comes from the repo Rng seeded by
 * SearchOptions::seed, and the trial plan is fixed up front from the
 * budget — no wall-clock reads steer the walk. Same seed + same
 * measurements therefore reproduce the same trajectory and the same
 * chosen config, which is what the determinism unit test asserts
 * against a recorded trial log.
 */

#ifndef HEROSIGN_TUNE_SEARCH_HH
#define HEROSIGN_TUNE_SEARCH_HH

#include <cstdint>
#include <vector>

#include "tune/knob_space.hh"
#include "tune/prior.hh"
#include "tune/trial_runner.hh"

namespace herosign::tune
{

/** Knobs of the search itself. */
struct SearchOptions
{
    uint64_t seed = 1; ///< drives every random choice the walk makes
    /// Candidate configs to measure. 0 = derive from budgetSeconds
    /// and trialSecondsHint.
    unsigned maxTrials = 0;
    /// Wall-time budget the plan is sized for (only consulted when
    /// maxTrials == 0; the plan is fixed before the first trial).
    double budgetSeconds = 30.0;
    /// Trials per candidate; the score is their median ops/s.
    unsigned medianOf = 3;
    /// First-probe prune: when one probe lands below this fraction of
    /// the incumbent best, skip the candidate's remaining probes.
    double pruneRatio = 0.7;
    double initialTemp = 0.20; ///< relative-delta acceptance scale
    double finalTemp = 0.02;   ///< cooled-to scale at the last step
    /// Expected seconds one trial costs; sizes the plan under a
    /// budget. Keep equal to the runner's FabricWorkload::trialSeconds.
    double trialSecondsHint = 0.25;
    /// Workload facts for the analytic warm start.
    PriorModel prior;
};

/** One evaluated candidate in the search trajectory. */
struct TrialRecord
{
    unsigned index = 0;  ///< evaluation order (0 = the warm start)
    KnobConfig config;
    TrialMeasurement measurement; ///< the median probe
    double score = 0;    ///< median ops/s across the probes
    unsigned probes = 0; ///< trials actually spent (1 when pruned)
    bool pruned = false; ///< first probe fell below the prune bar
    bool accepted = false; ///< the walk moved here
    bool improvedBest = false;
};

/** What the search found. */
struct SearchResult
{
    KnobConfig bestConfig;
    TrialMeasurement bestMeasurement;
    double bestScore = 0;
    std::vector<TrialRecord> trajectory;
    unsigned trialsPlanned = 0;  ///< candidate evaluations planned
    unsigned measurements = 0;   ///< runner.measure() calls made
};

/**
 * Anneal over @p space scoring candidates with @p runner. The walk
 * starts at the analytic prior's best point, proposes
 * KnobSpace::neighbor moves, and Metropolis-accepts on the relative
 * score delta under a geometrically cooled temperature. Already-seen
 * points re-use their cached score without burning budget.
 */
SearchResult search(const KnobSpace &space, TrialRunner &runner,
                    const SearchOptions &opts = {});

} // namespace herosign::tune

#endif // HEROSIGN_TUNE_SEARCH_HH
