/**
 * @file
 * Cheap analytic prior over the knob space — the warm start of the
 * measured search.
 *
 * The gpusim cost model ranks Tree Tuning candidates by (sync points
 * asc, thread utilization desc, smem utilization desc). Translated
 * to the CPU serving stack the same three pressures become:
 *
 *  * sync points      -> scheduling friction: worker threads beyond
 *                        the physical cores context-switch instead
 *                        of overlapping, and shard counts far from
 *                        the worker count either funnel producers
 *                        through too few locks or send consumers on
 *                        long work-stealing scans.
 *  * thread util      -> lane fill: a coalescing window below the
 *                        dispatched hashLaneWidth() leaves SIMD
 *                        lanes empty exactly like idle warp slots.
 *  * smem util        -> warm-state residency: a context cache
 *                        smaller than the tenant working set rebuilds
 *                        seeds on the hot path, the CPU analogue of
 *                        spilling shared memory.
 *
 * The prior never replaces measurement — it only ranks candidates so
 * the annealing walk starts from a sensible region instead of the
 * hand-set defaults.
 */

#ifndef HEROSIGN_TUNE_PRIOR_HH
#define HEROSIGN_TUNE_PRIOR_HH

#include "tune/knob_space.hh"

namespace herosign::tune
{

/** Workload/host facts the prior scores against. */
struct PriorModel
{
    unsigned hwThreads = 0; ///< 0 = hardware_concurrency()
    unsigned laneWidth = 0; ///< 0 = hashLaneWidth()
    unsigned tenants = 4;   ///< expected warm working set
    /// Fraction of traffic on the sign plane (the rest verifies);
    /// weighs the two lane-fill terms.
    double signShare = 0.5;
};

/**
 * Unitless desirability of @p cfg under @p model; higher is better.
 * Deterministic, no measurement.
 */
double priorScore(const KnobConfig &cfg, const PriorModel &model = {});

/**
 * The highest-scoring point of @p space (ties resolve to the first
 * in enumeration order, so the result is deterministic).
 */
KnobSpace::Point priorBestPoint(const KnobSpace &space,
                                const PriorModel &model = {});

} // namespace herosign::tune

#endif // HEROSIGN_TUNE_PRIOR_HH
